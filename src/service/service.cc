#include "service/service.h"

#include <chrono>
#include <limits>
#include <utility>

#include "common/check.h"
#include "geo/point.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "runtime/backoff.h"

namespace scguard::service {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Service metric set (DESIGN.md section 14), resolved once per process
/// like the engine's. Counters accumulate in consumer locals and flush at
/// loop exit; only the two staleness gauges and the latency histogram are
/// touched per batch / per task, and only while obs is enabled.
struct ServiceObs {
  obs::Counter* tasks;
  obs::Counter* reports;
  obs::Counter* tasks_rejected;
  obs::Counter* reports_rejected;
  obs::Counter* epochs;
  obs::Gauge* queue_depth;
  obs::Gauge* epoch_lag;
  obs::Histogram* admission_to_assignment;

  static const ServiceObs& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static const ServiceObs o = {
        registry.GetCounter("scguard.service.tasks"),
        registry.GetCounter("scguard.service.reports"),
        registry.GetCounter("scguard.service.tasks_rejected"),
        registry.GetCounter("scguard.service.reports_rejected"),
        registry.GetCounter("scguard.service.epochs"),
        registry.GetGauge("scguard.service.ingest_queue_depth"),
        registry.GetGauge("scguard.service.epoch_lag"),
        registry.GetHistogram(
            "scguard.service.admission_to_assignment_seconds")};
    return o;
  }
};

/// Pre-interned span names for the service's flight-recorder family.
struct ServiceTraceIds {
  uint16_t apply;
  uint16_t scan;
  uint16_t drain;

  static const ServiceTraceIds& Get() {
    auto& recorder = obs::FlightRecorder::Global();
    static const ServiceTraceIds ids = {recorder.InternName("service.apply"),
                                        recorder.InternName("service.scan"),
                                        recorder.InternName("service.drain")};
    return ids;
  }
};

assign::U2uCandidateStage::Config MakeU2uConfig(const ServiceConfig& c) {
  assign::U2uCandidateStage::Config u2u_config;
  u2u_config.model = c.u2u_model;
  u2u_config.alpha = c.alpha;
  u2u_config.kernel = c.kernel;
  u2u_config.runtime = c.runtime;
  if (c.pruning_gamma.has_value()) {
    u2u_config.pruning = assign::U2uCandidateStage::Pruning{
        *c.pruning_gamma, c.pruning_backend, c.worker_params, c.task_params,
        c.region};
  }
  return u2u_config;
}

}  // namespace

AssignmentService::AssignmentService(ServiceConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      rank_rng_(config_.rank_seed),
      u2u_(MakeU2uConfig(config_)),
      u2e_({.model = config_.u2e_model, .rank = config_.rank,
            .kernel = config_.kernel,
            .audit_epsilon = config_.worker_params.epsilon}),
      e2e_({.rank = config_.rank, .beta = config_.beta,
            .beta_mode = config_.beta_mode,
            .redundancy_k = config_.redundancy_k}) {
  SCGUARD_CHECK(config_.u2u_model != nullptr);
  if (config_.rank == assign::RankStrategy::kProbability) {
    SCGUARD_CHECK(config_.u2e_model != nullptr);
  }
  SCGUARD_CHECK(config_.max_batch >= 1);
}

AssignmentService::~AssignmentService() {
  if (started_ && !stopped_) Stop(StopMode::kAbandon);
}

uint32_t AssignmentService::RegisterWorker(const assign::Worker& w) {
  SCGUARD_CHECK(!started_);
  const size_t i = workers_.size();
  SCGUARD_CHECK(i < std::numeric_limits<uint32_t>::max());
  workers_.push_back(w);
  random_rank_.push_back(rank_rng_.UniformDouble());
  u2u_.AddWorker(w.noisy_location, w.reach_radius_m);
  return static_cast<uint32_t>(i);
}

void AssignmentService::Start() {
  SCGUARD_CHECK(!started_ && !stopped_);
  started_ = true;
  metrics_.num_workers = static_cast<int64_t>(workers_.size());
  // Threshold prewarm, pruning-index build, mirror attach: done here so
  // the consumer's first scan measures only the scan.
  u2u_.Prepare();
  ranked_.reserve(workers_.size());
  consumer_ = std::thread([this] { ConsumerLoop(); });
}

bool AssignmentService::SubmitTask(const assign::Task& t) {
  ServiceEvent ev;
  ev.kind = ServiceEvent::Kind::kTask;
  ev.task_id = t.id;
  ev.exact = t.location;
  ev.noisy = t.noisy_location;
  ev.submit_ns = NowNs();
  if (!queue_.TryPush(ev)) {
    tasks_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  tasks_pushed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool AssignmentService::ReportLocation(uint32_t worker,
                                       geo::Point exact_location,
                                       geo::Point noisy_location) {
  SCGUARD_CHECK(worker < workers_.size());
  ServiceEvent ev;
  ev.kind = ServiceEvent::Kind::kReport;
  ev.worker = worker;
  ev.exact = exact_location;
  ev.noisy = noisy_location;
  ev.submit_ns = NowNs();
  if (!queue_.TryPush(ev)) {
    reports_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  reports_pushed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AssignmentService::Stop(StopMode mode) {
  if (!started_ || stopped_) return;
  stopped_ = true;
  const auto drain_start = Clock::now();
  if (mode == StopMode::kAbandon) {
    abandon_.store(true, std::memory_order_release);
  } else {
    draining_.store(true, std::memory_order_release);
  }
  consumer_.join();
  drain_seconds_ =
      std::chrono::duration<double>(Clock::now() - drain_start).count();
  if (mode == StopMode::kDrain && obs::RecorderEnabled()) {
    const uint64_t end_ns = NowNs();
    obs::EmitSpanAt(
        ServiceTraceIds::Get().drain,
        end_ns - static_cast<uint64_t>(drain_seconds_ * 1e9), end_ns);
  }
}

void AssignmentService::Replay(const std::vector<ServiceEvent>& log) {
  SCGUARD_CHECK(!started_ && !stopped_);
  stopped_ = true;  // Results become readable; Start is now invalid.
  metrics_.num_workers = static_cast<int64_t>(workers_.size());
  u2u_.Prepare();
  ranked_.reserve(workers_.size());
  const auto start = Clock::now();
  for (const ServiceEvent& ev : log) {
    log_.push_back(ev);
    if (ev.kind == ServiceEvent::Kind::kReport) {
      ApplyReport(ev);
    } else {
      ScanTask(ev);
    }
  }
  metrics_.total_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  FinalizeMetrics();
}

IngestStats AssignmentService::ingest_stats() const {
  IngestStats s;
  s.tasks_submitted = tasks_pushed_.load(std::memory_order_relaxed);
  s.reports_submitted = reports_pushed_.load(std::memory_order_relaxed);
  s.tasks_rejected = tasks_rejected_.load(std::memory_order_relaxed);
  s.reports_rejected = reports_rejected_.load(std::memory_order_relaxed);
  s.epochs = static_cast<int64_t>(epoch_.load(std::memory_order_acquire));
  return s;
}

void AssignmentService::ConsumerLoop() {
  const bool obs_on = obs::Enabled();
  const bool rec_on = obs::RecorderEnabled();
  const ServiceObs& so = ServiceObs::Get();
  const ServiceTraceIds& sti = ServiceTraceIds::Get();
  runtime::IdleBackoff backoff;
  std::vector<ServiceEvent> batch_tasks;
  batch_tasks.reserve(static_cast<size_t>(config_.max_batch));
  const auto loop_start = Clock::now();

  for (;;) {
    // ---- Apply phase: drain a bounded batch ------------------------
    // Reports mutate the stage state in pop order (incremental Relocate +
    // reactivation); tasks are set aside and scanned after the epoch
    // bump, so every task in a batch sees the same snapshot.
    batch_tasks.clear();
    const uint64_t apply_start_ns = rec_on ? NowNs() : 0;
    size_t popped = 0;
    ServiceEvent ev;
    while (popped < static_cast<size_t>(config_.max_batch) &&
           queue_.TryPop(ev)) {
      ++popped;
      if (ev.kind == ServiceEvent::Kind::kReport) {
        log_.push_back(ev);
        ApplyReport(ev);
      } else {
        batch_tasks.push_back(ev);
      }
    }
    if (popped == 0) {
      if (abandon_.load(std::memory_order_acquire) ||
          draining_.load(std::memory_order_acquire)) {
        break;
      }
      backoff.Pause();
      continue;
    }
    backoff.Reset();
    events_applied_.fetch_add(static_cast<int64_t>(popped),
                              std::memory_order_relaxed);

    // ---- Publish: one epoch per batch ------------------------------
    epoch_.fetch_add(1, std::memory_order_release);
    ++epochs_published_;
    if (obs_on) {
      so.queue_depth->Set(static_cast<double>(queue_.ApproxDepth()));
      const int64_t pushed =
          tasks_pushed_.load(std::memory_order_relaxed) +
          reports_pushed_.load(std::memory_order_relaxed);
      so.epoch_lag->Set(static_cast<double>(
          pushed - events_applied_.load(std::memory_order_relaxed)));
    }
    if (rec_on) obs::EmitSpanAt(sti.apply, apply_start_ns, NowNs());

    // ---- Scan phase: tasks pinned at the new epoch -----------------
    for (const ServiceEvent& task_ev : batch_tasks) {
      const uint64_t scan_start_ns = rec_on ? NowNs() : 0;
      log_.push_back(task_ev);
      ScanTask(task_ev);
      if (rec_on) obs::EmitSpanAt(sti.scan, scan_start_ns, NowNs());
      if (obs_on && !completions_.empty()) {
        const CompletionRecord& done = completions_.back();
        so.admission_to_assignment->Observe(
            static_cast<double>(done.done_ns - done.submit_ns) * 1e-9);
      }
    }

    if (abandon_.load(std::memory_order_acquire)) break;
  }

  metrics_.total_seconds =
      std::chrono::duration<double>(Clock::now() - loop_start).count();
  FinalizeMetrics();
}

void AssignmentService::ApplyReport(const ServiceEvent& ev) {
  assign::Worker& w = workers_[ev.worker];
  w.location = ev.exact;
  w.noisy_location = ev.noisy;
  // Order matters: the relocate updates the pruner's stored region first,
  // so a matched worker's Restore (inside MarkAvailable) re-inserts at the
  // *new* noisy location.
  u2u_.UpdateWorkerLocation(ev.worker, ev.noisy);
  if (config_.reactivate_on_report) u2u_.MarkAvailable(ev.worker);
  ++reports_applied_;
}

void AssignmentService::ScanTask(const ServiceEvent& ev) {
  // The engine's per-task protocol body (scguard_engine.cc), minus the
  // observer-only accuracy scan: U2U collect -> U2E rank -> E2E contact.
  assign::RunMetrics& m = metrics_;
  m.num_tasks += 1;

  const auto u2u_start = Clock::now();
  const std::vector<uint32_t>& candidates = u2u_.Collect(ev.noisy);
  const assign::U2uCandidateStage::Stats& scan = u2u_.stats();
  obs_evaluated_ += scan.scanned_last;
  obs_pruned_ += scan.pruned_last;
  obs_alpha_rejections_ +=
      scan.scanned_last - static_cast<int64_t>(candidates.size());
  m.u2u_scanned += scan.scanned_last;
  if (m.num_tasks == 1) m.u2u_scanned_first_task = scan.scanned_last;
  m.u2u_scanned_last_task = scan.scanned_last;
  m.u2u_seconds +=
      std::chrono::duration<double>(Clock::now() - u2u_start).count();
  m.candidates_sum += static_cast<int64_t>(candidates.size());
  m.server_to_requester_msgs += 1;

  CompletionRecord done;
  done.task_id = ev.task_id;
  done.submit_ns = ev.submit_ns;
  done.epoch = epoch_.load(std::memory_order_relaxed);

  if (!candidates.empty()) {
    const reachability::WorkerFilterSoA& soa = u2u_.soa();
    const auto u2e_start = Clock::now();
    u2e_.Rank(soa, candidates, ev.exact, random_rank_.data(), ranked_,
              ev.task_id);
    m.u2e_seconds +=
        std::chrono::duration<double>(Clock::now() - u2e_start).count();

    const bool has_bands = soa.accept_below_sq.size() == workers_.size();
    const assign::E2eContactStage::Outcome outcome = e2e_.Run(
        ranked_,
        [&](size_t i) {
          const assign::Worker& w = workers_[i];
          if (!w.CanReach(ev.exact)) return false;
          u2u_.MarkMatched(static_cast<uint32_t>(i));
          const double travel = geo::Distance(w.location, ev.exact);
          assignments_.push_back({ev.task_id, w.id, travel});
          m.accepted_assignments += 1;
          m.travel_sum_m += travel;
          if (done.worker_id < 0) {
            done.worker_id = w.id;
            done.travel_m = travel;
          }
          return true;
        },
        [&](size_t i) { return workers_[i].CanReach(ev.exact); }, m,
        ev.task_id,
        [&](size_t i) {
          if (!has_bands) return obs::AuditFilter::kDirectEval;
          const double dx = soa.x[i] - ev.noisy.x;
          const double dy = soa.y[i] - ev.noisy.y;
          return dx * dx + dy * dy <= soa.accept_below_sq[i]
                     ? obs::AuditFilter::kAlphaBandAccept
                     : obs::AuditFilter::kDirectEval;
        });
    if (outcome.cancelled) ++obs_beta_cancels_;
  }

  done.done_ns = NowNs();
  completions_.push_back(done);
}

void AssignmentService::FinalizeMetrics() {
  if (finalized_) return;
  finalized_ = true;
  assign::RunMetrics& m = metrics_;
  if (const index::GridIndex::QueryStats* gs = u2u_.grid_query_stats()) {
    m.cells_bulk_accepted = gs->cells_bulk_accepted;
    m.cells_skipped = gs->cells_skipped;
    m.boundary_workers = gs->boundary_workers;
  }
  m.u2u_gather_bytes = u2u_.stats().gather_bytes;
  m.cells_emitted_direct = u2u_.stats().cells_emitted_direct;

  // One flush per counter, mirroring the engine's end-of-run pattern; the
  // shared engine counters double-count nothing because the service uses
  // its own scguard.service.* names.
  const ServiceObs& so = ServiceObs::Get();
  so.tasks->Increment(m.num_tasks);
  so.reports->Increment(reports_applied_);
  so.tasks_rejected->Increment(
      tasks_rejected_.load(std::memory_order_relaxed));
  so.reports_rejected->Increment(
      reports_rejected_.load(std::memory_order_relaxed));
  so.epochs->Increment(epochs_published_);

  auto& registry = obs::MetricsRegistry::Global();
  auto* evaluated = registry.GetCounter("scguard.service.workers_evaluated");
  auto* pruned = registry.GetCounter("scguard.service.workers_pruned");
  auto* alpha_rej = registry.GetCounter("scguard.service.alpha_rejections");
  auto* beta = registry.GetCounter("scguard.service.beta_cancels");
  evaluated->Increment(obs_evaluated_);
  pruned->Increment(obs_pruned_);
  alpha_rej->Increment(obs_alpha_rejections_);
  beta->Increment(obs_beta_cancels_);
}

}  // namespace scguard::service
