// Decomposes the paper's utility losses against the clairvoyant offline
// optimum: the price of *onlineness* (offline optimum vs online Ranking,
// bounded by the 1 - 1/e = 0.63 competitive ratio of [Karp-Vazirani-
// Vazirani]) and the price of *privacy* (ground-truth online vs the
// private algorithms).

#include "bench/bench_common.h"
#include "assign/offline.h"

namespace scguard::bench {
namespace {

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  const privacy::PrivacyParams p{sim::kDefaultEpsilon, sim::kDefaultRadius};

  sim::TablePrinter table(
      StrCat("Online & privacy gaps vs offline optimum (eps=", p.epsilon,
             ", r=", p.radius_m, ")"),
      {"algorithm", "utility", "ratio to offline", "travel (m)"});

  double offline_utility = 0.0;
  auto report = [&](assign::MatcherHandle handle) {
    const auto agg = OrDie(runner.Run(handle, p, p));
    if (offline_utility == 0.0) offline_utility = agg.assigned_tasks;
    table.AddRow(handle.name(),
                 {agg.assigned_tasks, agg.assigned_tasks / offline_utility,
                  agg.travel_m},
                 2);
  };

  {
    assign::MatcherHandle h;
    h.matcher = std::make_unique<assign::OfflineOptimalMatcher>(
        assign::OfflineObjective::kMaxTasks);
    report(std::move(h));
  }
  {
    assign::MatcherHandle h;
    h.matcher = std::make_unique<assign::OfflineOptimalMatcher>(
        assign::OfflineObjective::kMinTravelCost);
    report(std::move(h));
  }
  report(assign::MakeGroundTruth(assign::RankStrategy::kRandom));
  report(assign::MakeGroundTruth(assign::RankStrategy::kNearest));
  report(assign::MakeOblivious(assign::RankStrategy::kNearest, MakeParams(p)));
  report(assign::MakeProbabilisticModel(MakeParams(p)));
  table.Print(std::cout);

  std::cout << "\nThe Ranking competitive bound guarantees the GroundTruth-RR\n"
               "row stays above 0.63 of the offline optimum in expectation;\n"
               "the private rows additionally pay the privacy cost the paper\n"
               "quantifies in Figs. 8-9.\n";
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
