#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace scguard::index {
namespace {

double Enlargement(const geo::BoundingBox& box, const geo::BoundingBox& add) {
  return box.Union(add).Area() - box.Area();
}

// Quadratic seed pick (Guttman): the pair wasting the most area together.
std::pair<size_t, size_t> PickSeeds(const std::vector<geo::BoundingBox>& boxes) {
  double worst = -std::numeric_limits<double>::infinity();
  std::pair<size_t, size_t> seeds{0, 1};
  for (size_t i = 0; i < boxes.size(); ++i) {
    for (size_t j = i + 1; j < boxes.size(); ++j) {
      const double waste =
          boxes[i].Union(boxes[j]).Area() - boxes[i].Area() - boxes[j].Area();
      if (waste > worst) {
        worst = waste;
        seeds = {i, j};
      }
    }
  }
  return seeds;
}

// Partitions indices 0..n-1 into two groups by quadratic distribution.
// Returns group assignment (false = group A, true = group B).
std::vector<bool> QuadraticPartition(const std::vector<geo::BoundingBox>& boxes,
                                     size_t min_fill) {
  const size_t n = boxes.size();
  auto [seed_a, seed_b] = PickSeeds(boxes);
  std::vector<bool> in_b(n, false);
  std::vector<bool> assigned(n, false);
  geo::BoundingBox box_a = boxes[seed_a];
  geo::BoundingBox box_b = boxes[seed_b];
  size_t count_a = 1, count_b = 1;
  assigned[seed_a] = true;
  assigned[seed_b] = true;
  in_b[seed_b] = true;

  size_t remaining = n - 2;
  while (remaining > 0) {
    // Force-assign when one group must take everything left to reach fill.
    if (count_a + remaining == min_fill) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          box_a.Extend(boxes[i]);
          ++count_a;
        }
      }
      break;
    }
    if (count_b + remaining == min_fill) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          in_b[i] = true;
          box_b.Extend(boxes[i]);
          ++count_b;
        }
      }
      break;
    }
    // PickNext: the entry with the strongest preference for one group.
    double best_diff = -1.0;
    size_t best = 0;
    double best_da = 0.0, best_db = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double da = Enlargement(box_a, boxes[i]);
      const double db = Enlargement(box_b, boxes[i]);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
        best_da = da;
        best_db = db;
      }
    }
    assigned[best] = true;
    --remaining;
    const bool to_b =
        best_db < best_da ||
        (best_db == best_da && (box_b.Area() < box_a.Area() ||
                                (box_b.Area() == box_a.Area() && count_b < count_a)));
    if (to_b) {
      in_b[best] = true;
      box_b.Extend(boxes[best]);
      ++count_b;
    } else {
      box_a.Extend(boxes[best]);
      ++count_a;
    }
  }
  return in_b;
}

}  // namespace

RTree::RTree(int max_entries)
    : max_entries_(max_entries),
      min_entries_(std::max(2, max_entries * 2 / 5)),
      root_(std::make_unique<Node>()) {
  SCGUARD_CHECK(max_entries >= 4);
}

void RTree::RecomputeBox(Node* node) const {
  node->box = geo::BoundingBox();
  if (node->leaf) {
    for (const auto& e : node->entries) node->box.Extend(e.box);
  } else {
    for (const auto& c : node->children) node->box.Extend(c->box);
  }
}

RTree::NodePtr RTree::SplitLeaf(Node* node) {
  std::vector<geo::BoundingBox> boxes;
  boxes.reserve(node->entries.size());
  for (const auto& e : node->entries) boxes.push_back(e.box);
  const auto in_b = QuadraticPartition(boxes, static_cast<size_t>(min_entries_));

  auto sibling = std::make_unique<Node>();
  sibling->leaf = true;
  std::vector<Entry> keep;
  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (in_b[i]) {
      sibling->entries.push_back(std::move(node->entries[i]));
    } else {
      keep.push_back(std::move(node->entries[i]));
    }
  }
  node->entries = std::move(keep);
  RecomputeBox(node);
  RecomputeBox(sibling.get());
  return sibling;
}

RTree::NodePtr RTree::SplitInternal(Node* node) {
  std::vector<geo::BoundingBox> boxes;
  boxes.reserve(node->children.size());
  for (const auto& c : node->children) boxes.push_back(c->box);
  const auto in_b = QuadraticPartition(boxes, static_cast<size_t>(min_entries_));

  auto sibling = std::make_unique<Node>();
  sibling->leaf = false;
  std::vector<NodePtr> keep;
  for (size_t i = 0; i < node->children.size(); ++i) {
    if (in_b[i]) {
      sibling->children.push_back(std::move(node->children[i]));
    } else {
      keep.push_back(std::move(node->children[i]));
    }
  }
  node->children = std::move(keep);
  RecomputeBox(node);
  RecomputeBox(sibling.get());
  return sibling;
}

void RTree::Insert(const geo::BoundingBox& box, int64_t id) {
  SCGUARD_CHECK(!box.empty());
  ++size_;

  // Descend to the best leaf, remembering the path for box updates/splits.
  std::vector<Node*> path;
  Node* node = root_.get();
  path.push_back(node);
  while (!node->leaf) {
    Node* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (const auto& child : node->children) {
      const double enl = Enlargement(child->box, box);
      const double area = child->box.Area();
      if (enl < best_enlargement ||
          (enl == best_enlargement && area < best_area)) {
        best_enlargement = enl;
        best_area = area;
        best = child.get();
      }
    }
    node = best;
    path.push_back(node);
  }

  node->entries.push_back({box, id});
  node->box.Extend(box);

  // Propagate splits and box growth up the path.
  NodePtr pending;  // Sibling produced by a split at the current level.
  for (size_t level = path.size(); level-- > 0;) {
    Node* current = path[level];
    if (pending) {
      current->children.push_back(std::move(pending));
    }
    current->box.Extend(box);
    const size_t load =
        current->leaf ? current->entries.size() : current->children.size();
    if (load > static_cast<size_t>(max_entries_)) {
      pending = current->leaf ? SplitLeaf(current) : SplitInternal(current);
    } else {
      pending = nullptr;
    }
  }
  if (pending) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(pending));
    RecomputeBox(new_root.get());
    root_ = std::move(new_root);
  }
}

void RTree::BulkLoad(std::vector<Entry> entries) {
  size_ = entries.size();
  if (entries.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }

  // STR: sort by x, slice into vertical strips of ~sqrt(n/M) * M entries,
  // sort each strip by y, and pack runs of M entries into leaves; recurse
  // on the parent level.
  const size_t cap = static_cast<size_t>(max_entries_);

  std::vector<NodePtr> level;
  {
    const size_t num_leaves = (entries.size() + cap - 1) / cap;
    const auto strips = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_leaves))));
    const size_t strip_size = ((num_leaves + strips - 1) / strips) * cap;
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.box.Center().x < b.box.Center().x;
              });
    for (size_t s = 0; s < entries.size(); s += strip_size) {
      const size_t end = std::min(s + strip_size, entries.size());
      std::sort(entries.begin() + static_cast<long>(s),
                entries.begin() + static_cast<long>(end),
                [](const Entry& a, const Entry& b) {
                  return a.box.Center().y < b.box.Center().y;
                });
      for (size_t i = s; i < end; i += cap) {
        auto leaf = std::make_unique<Node>();
        leaf->leaf = true;
        const size_t leaf_end = std::min(i + cap, end);
        leaf->entries.assign(entries.begin() + static_cast<long>(i),
                             entries.begin() + static_cast<long>(leaf_end));
        RecomputeBox(leaf.get());
        level.push_back(std::move(leaf));
      }
    }
  }

  // Pack parent levels the same way until one root remains.
  while (level.size() > 1) {
    const size_t num_parents = (level.size() + cap - 1) / cap;
    const auto strips = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const size_t strip_size = ((num_parents + strips - 1) / strips) * cap;
    std::sort(level.begin(), level.end(), [](const NodePtr& a, const NodePtr& b) {
      return a->box.Center().x < b->box.Center().x;
    });
    std::vector<NodePtr> parents;
    for (size_t s = 0; s < level.size(); s += strip_size) {
      const size_t end = std::min(s + strip_size, level.size());
      std::sort(level.begin() + static_cast<long>(s),
                level.begin() + static_cast<long>(end),
                [](const NodePtr& a, const NodePtr& b) {
                  return a->box.Center().y < b->box.Center().y;
                });
      for (size_t i = s; i < end; i += cap) {
        auto parent = std::make_unique<Node>();
        parent->leaf = false;
        const size_t parent_end = std::min(i + cap, end);
        for (size_t j = i; j < parent_end; ++j) {
          parent->children.push_back(std::move(level[j]));
        }
        RecomputeBox(parent.get());
        parents.push_back(std::move(parent));
      }
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
}

void RTree::Query(const geo::BoundingBox& query,
                  const std::function<void(const Entry&)>& fn) const {
  if (size_ == 0) return;
  VisitNode(root_.get(), query, fn);
}

std::vector<int64_t> RTree::QueryIds(const geo::BoundingBox& query) const {
  std::vector<int64_t> ids;
  QueryIds(query, ids);
  return ids;
}

void RTree::QueryIds(const geo::BoundingBox& query,
                     std::vector<int64_t>& out) const {
  out.clear();
  if (size_ == 0) return;
  VisitNode(root_.get(), query,
            [&out](const Entry& e) { out.push_back(e.id); });
}

int RTree::Height() const {
  if (size_ == 0) return 0;
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

int RTree::LeafDepth(const Node* node) const {
  int depth = 0;
  while (!node->leaf) {
    node = node->children.front().get();
    ++depth;
  }
  return depth;
}

bool RTree::CheckNode(const Node* node, int depth, int leaf_depth) const {
  if (node->leaf) {
    if (depth != leaf_depth) return false;
    geo::BoundingBox box;
    for (const auto& e : node->entries) box.Extend(e.box);
    return node->entries.empty() ? node->box.empty() : box == node->box;
  }
  if (node->children.empty()) return false;
  geo::BoundingBox box;
  for (const auto& c : node->children) {
    box.Extend(c->box);
    if (!CheckNode(c.get(), depth + 1, leaf_depth)) return false;
    const size_t load = c->leaf ? c->entries.size() : c->children.size();
    if (load > static_cast<size_t>(max_entries_)) return false;
  }
  return box == node->box;
}

bool RTree::CheckInvariants() const {
  if (size_ == 0) return root_->leaf && root_->entries.empty();
  return CheckNode(root_.get(), 0, LeafDepth(root_.get()));
}

}  // namespace scguard::index
