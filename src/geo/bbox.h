#ifndef SCGUARD_GEO_BBOX_H_
#define SCGUARD_GEO_BBOX_H_

#include <algorithm>
#include <limits>
#include <ostream>

#include "geo/point.h"

namespace scguard::geo {

/// An axis-aligned rectangle in local planar coordinates (meters).
///
/// The default-constructed box is *empty* (contains nothing); extending an
/// empty box with a point yields the degenerate box at that point.
struct BoundingBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  static BoundingBox FromCorners(Point lo, Point hi) {
    return {std::min(lo.x, hi.x), std::min(lo.y, hi.y),
            std::max(lo.x, hi.x), std::max(lo.y, hi.y)};
  }

  /// The smallest box containing the disk of radius `radius` around `center`.
  static BoundingBox FromCircle(Point center, double radius) {
    return {center.x - radius, center.y - radius, center.x + radius,
            center.y + radius};
  }

  bool empty() const { return min_x > max_x || min_y > max_y; }
  double Width() const { return empty() ? 0.0 : max_x - min_x; }
  double Height() const { return empty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }
  Point Center() const { return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0}; }

  bool Contains(Point p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const BoundingBox& o) const {
    return !empty() && !o.empty() && min_x <= o.max_x && o.min_x <= max_x &&
           min_y <= o.max_y && o.min_y <= max_y;
  }

  /// Grows this box to include `p`.
  void Extend(Point p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  /// Grows this box to include `o`.
  void Extend(const BoundingBox& o) {
    if (o.empty()) return;
    min_x = std::min(min_x, o.min_x);
    min_y = std::min(min_y, o.min_y);
    max_x = std::max(max_x, o.max_x);
    max_y = std::max(max_y, o.max_y);
  }

  /// The union of this box and `o`, without modifying either.
  BoundingBox Union(const BoundingBox& o) const {
    BoundingBox out = *this;
    out.Extend(o);
    return out;
  }

  /// Minimum distance from `p` to any point of this box (0 if inside).
  double DistanceTo(Point p) const {
    const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
    const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
    return std::hypot(dx, dy);
  }

  friend bool operator==(const BoundingBox& a, const BoundingBox& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

inline std::ostream& operator<<(std::ostream& os, const BoundingBox& b) {
  return os << "[" << b.min_x << "," << b.min_y << " .. " << b.max_x << ","
            << b.max_y << "]";
}

}  // namespace scguard::geo

#endif  // SCGUARD_GEO_BBOX_H_
