#include "sim/table_printer.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/str_format.h"

namespace scguard::sim {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  SCGUARD_CHECK(!columns_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SCGUARD_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int digits) {
  SCGUARD_CHECK(values.size() + 1 == columns_.size());
  std::vector<std::string> cells;
  cells.reserve(columns_.size());
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, digits));
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  size_t total = 1;
  for (size_t w : widths) total += w + 3;
  os << "\n== " << title_ << " ==\n";
  print_row(columns_);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintJson(std::ostream& os) const {
  const auto print_cells = [&os](const std::vector<std::string>& cells) {
    os << '[';
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << '"' << JsonEscape(cells[c]) << '"';
    }
    os << ']';
  };
  os << "{\"title\":\"" << JsonEscape(title_) << "\",\"columns\":";
  print_cells(columns_);
  os << ",\"rows\":[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) os << ',';
    print_cells(rows_[r]);
  }
  os << "]}\n";
}

}  // namespace scguard::sim
