#ifndef SCGUARD_GEO_PROJECTION_H_
#define SCGUARD_GEO_PROJECTION_H_

#include "geo/latlon.h"
#include "geo/point.h"

namespace scguard::geo {

/// Local equirectangular projection anchored at a reference coordinate.
///
/// Over a city-scale extent (tens of km, e.g. Beijing for T-Drive) the
/// distance distortion of this projection is far below the Geo-I noise
/// scale, so planar Euclidean distance on projected points is a faithful
/// stand-in for geodesic distance.
class LocalProjection {
 public:
  /// Creates a projection with `origin` mapping to Point{0, 0}.
  explicit LocalProjection(LatLon origin);

  /// Projects a geographic coordinate to local meters.
  Point Forward(LatLon ll) const;

  /// Inverse-projects local meters back to a geographic coordinate.
  LatLon Backward(Point p) const;

  LatLon origin() const { return origin_; }

 private:
  LatLon origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace scguard::geo

#endif  // SCGUARD_GEO_PROJECTION_H_
