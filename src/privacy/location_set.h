#ifndef SCGUARD_PRIVACY_LOCATION_SET_H_
#define SCGUARD_PRIVACY_LOCATION_SET_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "geo/point.h"
#include "privacy/mechanism.h"
#include "privacy/privacy_params.h"
#include "stats/rng.h"

namespace scguard::privacy {

/// Geo-indistinguishability for a *set* of correlated locations
/// (paper Sec. VII / Andrés et al. Sec. III-E).
///
/// When a user releases n locations that are correlated (a worker's trace,
/// a requester's task cluster), protecting each at (eps, r) only yields
/// (n*eps, r) jointly. To keep the joint guarantee at (eps, r), each
/// individual release must run at eps/n — the noise per location grows
/// linearly with the set size, which is exactly the utility collapse the
/// paper predicts for the rejected "server ranks U2E responses" design
/// and for naive dynamic re-reporting.
class LocationSetMechanism {
 public:
  /// Joint guarantee (eps, r) over sets of up to `set_size` locations.
  /// Requires valid params and set_size >= 1.
  static Result<LocationSetMechanism> Create(const PrivacyParams& params,
                                             int set_size);

  /// The per-location privacy level actually applied: (eps / set_size, r).
  PrivacyParams per_location_params() const { return per_location_; }
  const PrivacyParams& joint_params() const { return joint_; }
  int set_size() const { return set_size_; }

  /// Perturbs up to set_size() locations under the joint guarantee.
  /// Fails with InvalidArgument if more locations are passed.
  Result<std::vector<geo::Point>> PerturbSet(
      const std::vector<geo::Point>& locations, stats::Rng& rng) const;

  /// Perturbs a single member of the set (spending its eps/n share).
  geo::Point PerturbOne(geo::Point location, stats::Rng& rng) const;

  /// The per-location obfuscation mechanism (selected by the joint spec).
  const Mechanism& mechanism() const { return *mechanism_; }

 private:
  LocationSetMechanism(const PrivacyParams& joint, int set_size,
                       std::shared_ptr<const Mechanism> mechanism);

  PrivacyParams joint_;
  PrivacyParams per_location_;
  int set_size_;
  // shared_ptr keeps the class copyable (Result<T> requires it).
  std::shared_ptr<const Mechanism> mechanism_;
};

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_LOCATION_SET_H_
