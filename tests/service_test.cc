// The sustained-throughput assignment service (DESIGN.md section 14):
// lock-free ingest correctness under concurrent producers, drain-on-
// shutdown completeness, queue-full backpressure, epoch monotonicity, and
// the determinism contract — a concurrent service run is bit-identical to
// a serial replay of its admission log, and a service fed only tasks is
// bit-identical to ScGuardEngine::Run.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "assign/scguard_engine.h"
#include "data/workload.h"
#include "geo/bbox.h"
#include "privacy/mechanism.h"
#include "reachability/analytical_model.h"
#include "reachability/binary_model.h"
#include "service/mpsc_queue.h"
#include "service/service.h"
#include "stats/rng.h"

namespace scguard::service {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

assign::Workload NoisyWorkload(int workers, int tasks, uint64_t seed) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = workers;
  config.num_tasks = tasks;
  stats::Rng rng(seed);
  assign::Workload w = data::MakeUniformWorkload(region, config, rng);
  data::PerturbWorkload(kDefault, kDefault, rng, w);
  return w;
}

ServiceConfig BaseConfig(const reachability::ReachabilityModel* model,
                         const geo::BoundingBox& region) {
  ServiceConfig config;
  config.u2u_model = model;
  config.u2e_model = model;
  config.alpha = 0.1;
  config.beta = 0.25;
  config.rank = assign::RankStrategy::kProbability;
  config.worker_params = kDefault;
  config.task_params = kDefault;
  config.pruning_gamma = 0.9;
  config.pruning_backend = index::PrunerBackend::kGrid;
  config.region = region;
  return config;
}

void ExpectSameResults(const AssignmentService& a, const AssignmentService& b,
                       const char* label) {
  ASSERT_EQ(a.assignments().size(), b.assignments().size()) << label;
  for (size_t i = 0; i < a.assignments().size(); ++i) {
    EXPECT_EQ(a.assignments()[i].task_id, b.assignments()[i].task_id)
        << label << " @" << i;
    EXPECT_EQ(a.assignments()[i].worker_id, b.assignments()[i].worker_id)
        << label << " @" << i;
    EXPECT_EQ(a.assignments()[i].travel_m, b.assignments()[i].travel_m)
        << label << " @" << i;
  }
  ASSERT_EQ(a.completions().size(), b.completions().size()) << label;
  for (size_t i = 0; i < a.completions().size(); ++i) {
    EXPECT_EQ(a.completions()[i].task_id, b.completions()[i].task_id)
        << label << " @" << i;
    EXPECT_EQ(a.completions()[i].worker_id, b.completions()[i].worker_id)
        << label << " @" << i;
    EXPECT_EQ(a.completions()[i].travel_m, b.completions()[i].travel_m)
        << label << " @" << i;
  }
  EXPECT_EQ(a.metrics().candidates_sum, b.metrics().candidates_sum) << label;
  EXPECT_EQ(a.metrics().requester_to_worker_msgs,
            b.metrics().requester_to_worker_msgs)
      << label;
  EXPECT_EQ(a.metrics().false_hits, b.metrics().false_hits) << label;
  EXPECT_EQ(a.metrics().u2u_scanned, b.metrics().u2u_scanned) << label;
}

TEST(MpscQueueTest, FifoSingleThread) {
  MpscQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // Full.
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(v));  // Empty.
  // Reusable after wraparound.
  for (int lap = 0; lap < 3; ++lap) {
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(lap * 10 + i));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.TryPop(v));
      EXPECT_EQ(v, lap * 10 + i);
    }
  }
}

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  MpscQueue<int> q(100);
  EXPECT_EQ(q.capacity(), 128u);
  MpscQueue<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(MpscQueueTest, ConcurrentProducersLoseNothingKeepPerProducerOrder) {
  // 4 producers x 20k items through a deliberately small ring (so full /
  // retry paths are exercised); the consumer checks global completeness
  // and per-producer FIFO order. Run under TSan in CI.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  MpscQueue<int64_t> q(256);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int64_t item = static_cast<int64_t>(p) * 1000000 + i;
        while (!q.TryPush(item)) std::this_thread::yield();
      }
    });
  }
  std::vector<int64_t> next_expected(kProducers, 0);
  int64_t popped = 0;
  while (popped < static_cast<int64_t>(kProducers) * kPerProducer) {
    int64_t item = -1;
    if (!q.TryPop(item)) {
      std::this_thread::yield();
      continue;
    }
    ++popped;
    const auto p = static_cast<size_t>(item / 1000000);
    const int64_t seq = item % 1000000;
    ASSERT_LT(p, static_cast<size_t>(kProducers));
    EXPECT_EQ(seq, next_expected[p]) << "producer " << p;
    next_expected[p] = seq + 1;
  }
  for (auto& t : producers) t.join();
  int64_t leftover;
  EXPECT_FALSE(q.TryPop(leftover));
}

TEST(ServiceTest, DrainCompletenessUnderConcurrentProducers) {
  // Every admitted task must have a completion record after Stop(kDrain),
  // and the admission log must hold exactly the admitted events.
  const assign::Workload workload = NoisyWorkload(300, 400, 7001);
  const reachability::AnalyticalModel model(kDefault);
  AssignmentService svc(BaseConfig(&model, workload.region));
  for (const auto& w : workload.workers) svc.RegisterWorker(w);
  svc.Start();

  std::thread reporter([&] {
    stats::Rng rng(5);
    const auto noise = privacy::MakeMechanismOrDie(kDefault);
    for (int i = 0; i < 500; ++i) {
      const auto w = static_cast<uint32_t>(
          rng.UniformInt(workload.workers.size()));
      geo::Point p = workload.workers[w].location;
      p.x += rng.Gaussian(0.0, 50.0);
      p.y += rng.Gaussian(0.0, 50.0);
      const geo::Point noisy = noise->Perturb(p, rng);
      while (!svc.ReportLocation(w, p, noisy)) {
        std::this_thread::yield();
      }
    }
  });
  int64_t tasks_admitted = 0;
  for (const auto& t : workload.tasks) {
    if (svc.SubmitTask(t)) ++tasks_admitted;
  }
  reporter.join();
  svc.Stop(AssignmentService::StopMode::kDrain);

  EXPECT_EQ(static_cast<int64_t>(svc.completions().size()), tasks_admitted);
  const IngestStats ingest = svc.ingest_stats();
  EXPECT_EQ(ingest.tasks_submitted, tasks_admitted);
  EXPECT_EQ(ingest.reports_submitted, 500);
  EXPECT_EQ(static_cast<int64_t>(svc.admission_log().size()),
            tasks_admitted + 500);
  EXPECT_GT(ingest.epochs, 0);
  // Completion order is admission order for tasks, and every record's
  // epoch is nondecreasing (each batch publishes once, then scans).
  uint64_t last_epoch = 0;
  for (const auto& c : svc.completions()) {
    EXPECT_GE(c.epoch, last_epoch);
    EXPECT_GE(c.done_ns, c.submit_ns);
    last_epoch = c.epoch;
  }
}

TEST(ServiceTest, BitIdenticalToSerialReplayOfAdmissionLog) {
  // The determinism contract: concurrency picks the admission order, and
  // the admission order alone decides the bits. Replaying the logged order
  // serially on a fresh service reproduces assignments, completions, and
  // decision metrics exactly.
  const assign::Workload workload = NoisyWorkload(400, 300, 7002);
  const reachability::AnalyticalModel model(kDefault);
  const ServiceConfig config = BaseConfig(&model, workload.region);

  AssignmentService live(config);
  for (const auto& w : workload.workers) live.RegisterWorker(w);
  live.Start();
  std::atomic<bool> run{true};
  std::thread reporter([&] {
    stats::Rng rng(6);
    const auto noise = privacy::MakeMechanismOrDie(kDefault);
    while (run.load(std::memory_order_relaxed)) {
      const auto w = static_cast<uint32_t>(
          rng.UniformInt(workload.workers.size()));
      geo::Point p = workload.workers[w].location;
      p.x += rng.Gaussian(0.0, 50.0);
      p.y += rng.Gaussian(0.0, 50.0);
      const geo::Point noisy = noise->Perturb(p, rng);
      while (!live.ReportLocation(w, p, noisy) &&
             run.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  });
  for (const auto& t : workload.tasks) {
    while (!live.SubmitTask(t)) std::this_thread::yield();
  }
  run.store(false, std::memory_order_relaxed);
  reporter.join();
  live.Stop(AssignmentService::StopMode::kDrain);
  ASSERT_EQ(live.completions().size(), workload.tasks.size());

  AssignmentService replay(config);
  for (const auto& w : workload.workers) replay.RegisterWorker(w);
  replay.Replay(live.admission_log());
  ExpectSameResults(live, replay, "live vs replay");
}

TEST(ServiceTest, MatchesEngineWithoutReports) {
  // A service fed only tasks executes the identical protocol sequence as
  // one ScGuardEngine::Run: same random-rank stream (rank_seed == the
  // run Rng's seed), same per-task stage bodies, same MarkMatched
  // active-set maintenance.
  const assign::Workload workload = NoisyWorkload(250, 200, 7003);
  const reachability::AnalyticalModel model(kDefault);

  ServiceConfig config = BaseConfig(&model, workload.region);
  config.rank_seed = 42;
  AssignmentService svc(config);
  for (const auto& w : workload.workers) svc.RegisterWorker(w);
  svc.Start();
  for (const auto& t : workload.tasks) {
    ASSERT_TRUE(svc.SubmitTask(t));
  }
  svc.Stop(AssignmentService::StopMode::kDrain);

  assign::EnginePolicy policy;
  policy.u2u_model = &model;
  policy.u2e_model = &model;
  policy.alpha = config.alpha;
  policy.beta = config.beta;
  policy.rank = config.rank;
  policy.worker_params = kDefault;
  policy.task_params = kDefault;
  policy.pruning_gamma = config.pruning_gamma;
  policy.pruning_backend = config.pruning_backend;
  policy.compute_accuracy_metrics = false;
  assign::ScGuardEngine engine(std::move(policy));
  stats::Rng rng(42);
  const assign::MatchResult run = engine.Run(workload, rng);

  ASSERT_EQ(svc.assignments().size(), run.assignments.size());
  for (size_t i = 0; i < run.assignments.size(); ++i) {
    EXPECT_EQ(svc.assignments()[i].task_id, run.assignments[i].task_id);
    EXPECT_EQ(svc.assignments()[i].worker_id, run.assignments[i].worker_id);
    EXPECT_EQ(svc.assignments()[i].travel_m, run.assignments[i].travel_m);
  }
  EXPECT_EQ(svc.metrics().candidates_sum, run.metrics.candidates_sum);
  EXPECT_EQ(svc.metrics().u2u_scanned, run.metrics.u2u_scanned);
  EXPECT_EQ(svc.metrics().false_hits, run.metrics.false_hits);
  EXPECT_EQ(svc.metrics().requester_to_worker_msgs,
            run.metrics.requester_to_worker_msgs);
}

TEST(ServiceTest, QueueFullBackpressureRejectsWithoutBlocking) {
  const assign::Workload workload = NoisyWorkload(50, 40, 7004);
  const reachability::AnalyticalModel model(kDefault);
  ServiceConfig config = BaseConfig(&model, workload.region);
  config.queue_capacity = 8;
  AssignmentService svc(config);
  for (const auto& w : workload.workers) svc.RegisterWorker(w);
  // Not started: the consumer never drains, so pushes past capacity must
  // come back false immediately.
  int64_t accepted = 0;
  for (const auto& t : workload.tasks) {
    if (svc.SubmitTask(t)) ++accepted;
  }
  EXPECT_EQ(accepted, 8);
  const IngestStats ingest = svc.ingest_stats();
  EXPECT_EQ(ingest.tasks_submitted, 8);
  EXPECT_EQ(ingest.tasks_rejected,
            static_cast<int64_t>(workload.tasks.size()) - 8);
  // Start/drain now completes exactly the admitted prefix.
  svc.Start();
  svc.Stop(AssignmentService::StopMode::kDrain);
  EXPECT_EQ(svc.completions().size(), 8u);
}

TEST(ServiceTest, ReportReactivatesMatchedWorker) {
  // One worker in reach of two tasks: without re-reports the second task
  // goes unassigned (the worker stays matched); a re-report between them
  // makes the worker available again.
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {10000, 10000});
  const reachability::BinaryModel model;

  assign::Worker w;
  w.id = 0;
  w.location = {5000, 5000};
  w.noisy_location = {5020, 4990};
  w.reach_radius_m = 3000;

  assign::Task t1;
  t1.id = 100;
  t1.location = {5100, 5100};
  t1.noisy_location = {5150, 5060};
  assign::Task t2 = t1;
  t2.id = 101;

  ServiceEvent report;
  report.kind = ServiceEvent::Kind::kReport;
  report.worker = 0;
  report.exact = w.location;
  report.noisy = w.noisy_location;

  auto make_event = [](const assign::Task& t) {
    ServiceEvent ev;
    ev.kind = ServiceEvent::Kind::kTask;
    ev.task_id = t.id;
    ev.exact = t.location;
    ev.noisy = t.noisy_location;
    return ev;
  };

  for (const bool reactivate : {true, false}) {
    ServiceConfig config;
    config.u2u_model = &model;
    config.rank = assign::RankStrategy::kNearest;
    config.region = region;
    config.reactivate_on_report = reactivate;
    config.pruning_gamma = 0.9;
    config.pruning_backend = index::PrunerBackend::kGrid;
    AssignmentService svc(config);
    svc.RegisterWorker(w);
    svc.Replay({make_event(t1), report, make_event(t2)});
    ASSERT_EQ(svc.completions().size(), 2u);
    EXPECT_EQ(svc.completions()[0].worker_id, 0);
    EXPECT_EQ(svc.completions()[1].worker_id, reactivate ? 0 : -1)
        << "reactivate=" << reactivate;
  }
}

}  // namespace
}  // namespace scguard::service
