#include "privacy/location_set.h"

#include "common/str_format.h"
#include "privacy/planar_laplace.h"

namespace scguard::privacy {

LocationSetMechanism::LocationSetMechanism(const PrivacyParams& joint,
                                           int set_size)
    : joint_(joint),
      per_location_{joint.epsilon / set_size, joint.radius_m},
      set_size_(set_size) {}

Result<LocationSetMechanism> LocationSetMechanism::Create(
    const PrivacyParams& params, int set_size) {
  SCGUARD_RETURN_NOT_OK(params.Validate());
  if (set_size < 1) {
    return Status::InvalidArgument("set_size must be >= 1");
  }
  return LocationSetMechanism(params, set_size);
}

Result<std::vector<geo::Point>> LocationSetMechanism::PerturbSet(
    const std::vector<geo::Point>& locations, stats::Rng& rng) const {
  if (locations.size() > static_cast<size_t>(set_size_)) {
    return Status::InvalidArgument(
        StrCat("set of ", locations.size(), " exceeds the protected size ",
               set_size_));
  }
  const PlanarLaplace laplace(per_location_.unit_epsilon());
  std::vector<geo::Point> out;
  out.reserve(locations.size());
  for (geo::Point l : locations) out.push_back(l + laplace.Sample(rng));
  return out;
}

geo::Point LocationSetMechanism::PerturbOne(geo::Point location,
                                            stats::Rng& rng) const {
  const PlanarLaplace laplace(per_location_.unit_epsilon());
  return location + laplace.Sample(rng);
}

}  // namespace scguard::privacy
