file(REMOVE_RECURSE
  "CMakeFiles/scguard_cli.dir/scguard_cli.cpp.o"
  "CMakeFiles/scguard_cli.dir/scguard_cli.cpp.o.d"
  "scguard_cli"
  "scguard_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
