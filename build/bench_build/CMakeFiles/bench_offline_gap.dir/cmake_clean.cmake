file(REMOVE_RECURSE
  "../bench/bench_offline_gap"
  "../bench/bench_offline_gap.pdb"
  "CMakeFiles/bench_offline_gap.dir/bench_offline_gap.cc.o"
  "CMakeFiles/bench_offline_gap.dir/bench_offline_gap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
