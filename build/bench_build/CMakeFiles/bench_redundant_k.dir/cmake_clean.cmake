file(REMOVE_RECURSE
  "../bench/bench_redundant_k"
  "../bench/bench_redundant_k.pdb"
  "CMakeFiles/bench_redundant_k.dir/bench_redundant_k.cc.o"
  "CMakeFiles/bench_redundant_k.dir/bench_redundant_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redundant_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
