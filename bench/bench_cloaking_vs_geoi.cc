// Cloaking (the related work's mechanism, with PUBLIC task locations)
// against SCGuard's Geo-I (both parties private), on two axes at once:
// assignment quality and what a prior-informed Bayesian adversary can
// infer from the reports. The cloak sizes are swept so the utility-match
// point can be read off against the privacy gap.

#include "assign/cloaked.h"
#include "bench/bench_common.h"
#include "data/beijing.h"
#include "data/trip_model.h"
#include "privacy/inference.h"
#include "privacy/planar_laplace.h"

namespace scguard::bench {
namespace {

// Mean adversary metrics over sampled victims drawn from the demand prior.
struct AdversaryScore {
  double expected_error_m = 0;
  double mass_within_r = 0;
};

AdversaryScore ScoreLaplace(const privacy::BayesianAdversary& adversary,
                            const std::vector<geo::Point>& victims,
                            const privacy::PrivacyParams& p, stats::Rng& rng) {
  const privacy::PlanarLaplace laplace(p.unit_epsilon());
  AdversaryScore score;
  for (const geo::Point v : victims) {
    const geo::Point report = v + laplace.Sample(rng);
    const auto posterior = adversary.PosteriorLaplace(report, p.unit_epsilon());
    const auto attack = adversary.Evaluate(posterior, v, p.radius_m);
    score.expected_error_m += attack.expected_error_m;
    score.mass_within_r += attack.mass_within_r;
  }
  score.expected_error_m /= static_cast<double>(victims.size());
  score.mass_within_r /= static_cast<double>(victims.size());
  return score;
}

AdversaryScore ScoreCloak(const privacy::BayesianAdversary& adversary,
                          const std::vector<geo::Point>& victims,
                          const privacy::CloakingMechanism& mechanism,
                          double radius_of_concern, stats::Rng& rng) {
  AdversaryScore score;
  for (const geo::Point v : victims) {
    const auto posterior = adversary.PosteriorCloak(mechanism.Cloak(v, rng));
    const auto attack = adversary.Evaluate(posterior, v, radius_of_concern);
    score.expected_error_m += attack.expected_error_m;
    score.mass_within_r += attack.mass_within_r;
  }
  score.expected_error_m /= static_cast<double>(victims.size());
  score.mass_within_r /= static_cast<double>(victims.size());
  return score;
}

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  const privacy::PrivacyParams p{0.7, 800.0};

  // A prior-informed adversary: it knows the city's demand surface (the
  // same mixture the workload is drawn from).
  const geo::BoundingBox region = data::BeijingRegion();
  stats::Rng prior_rng(42);  // Same seed as the runner's city.
  const data::HotspotMixture demand =
      data::HotspotMixture::MakeBeijingLike(region, 24, prior_rng);
  const privacy::BayesianAdversary adversary(
      region, 60, [&demand, &region](geo::Point q) {
        // Smooth prior from the mixture: kernel density over hotspots.
        double density = 0.25 / region.Area();
        for (const auto& h : demand.hotspots()) {
          const double d = geo::Distance(q, h.center);
          density += h.weight *
                     std::exp(-d * d / (2.0 * h.sigma_m * h.sigma_m)) /
                     (2.0 * M_PI * h.sigma_m * h.sigma_m);
        }
        return density;
      });
  stats::Rng victim_rng(7);
  std::vector<geo::Point> victims;
  for (int i = 0; i < 60; ++i) victims.push_back(demand.Sample(victim_rng));

  sim::TablePrinter table(
      StrCat("Cloaking (tasks PUBLIC) vs Geo-I SCGuard (eps=", p.epsilon,
             ", r=", p.radius_m, ") — utility and informed-adversary attack"),
      {"mechanism", "utility", "travel (m)", "false hits",
       "adv. expected error (m)", "adv. mass within r"});

  stats::Rng attack_rng(9);
  {
    assign::MatcherHandle handle = assign::MakeProbabilisticModel(MakeParams(p));
    const auto agg = OrDie(runner.Run(handle, p, p));
    const AdversaryScore score = ScoreLaplace(adversary, victims, p, attack_rng);
    table.AddRow("Geo-I Probabilistic-Model",
                 {agg.assigned_tasks, agg.travel_m, agg.false_hits,
                  score.expected_error_m, score.mass_within_r},
                 2);
  }
  for (double side_m : {1000.0, 2000.0, 4000.0, 8000.0}) {
    const privacy::CloakingMechanism mechanism(side_m, side_m);
    assign::MatcherHandle handle;
    handle.matcher = std::make_unique<assign::CloakedMatcher>(
        mechanism, sim::kDefaultAlpha, sim::kDefaultBeta);
    const auto agg = OrDie(runner.Run(handle, p, p));
    const AdversaryScore score =
        ScoreCloak(adversary, victims, mechanism, p.radius_m, attack_rng);
    table.AddRow(StrCat("Cloak ", side_m / 1000.0, "x", side_m / 1000.0, " km"),
                 {agg.assigned_tasks, agg.travel_m, agg.false_hits,
                  score.expected_error_m, score.mass_within_r},
                 2);
  }
  table.Print(std::cout);
  std::cout << "\nNote: the cloaked matcher additionally reveals every task\n"
               "location to the server — a disclosure SCGuard never makes.\n";
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
