file(REMOVE_RECURSE
  "CMakeFiles/scguard_geo.dir/latlon.cc.o"
  "CMakeFiles/scguard_geo.dir/latlon.cc.o.d"
  "CMakeFiles/scguard_geo.dir/projection.cc.o"
  "CMakeFiles/scguard_geo.dir/projection.cc.o.d"
  "libscguard_geo.a"
  "libscguard_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
