// Cross-module integration tests: the batch engine against the party-level
// protocol, and the paper's qualitative results on the synthetic T-Drive
// workload.

#include <gtest/gtest.h>

#include <set>

#include "assign/algorithms.h"
#include "assign/scguard_engine.h"
#include "core/protocol.h"
#include "core/scguard.h"
#include "data/workload.h"
#include "reachability/analytical_model.h"
#include "sim/defaults.h"
#include "sim/experiment.h"

namespace scguard {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

sim::ExperimentConfig SmallExperiment() {
  sim::ExperimentConfig config;
  config.synth.num_taxis = 600;
  config.synth.mean_trips_per_taxi = 8.0;
  config.workload.num_workers = 120;
  config.workload.num_tasks = 120;
  config.num_seeds = 4;
  return config;
}

// The batch engine (assign::ScGuardEngine) and the message-level protocol
// (core::ProtocolCoordinator) implement the same algorithm; with identical
// inputs they must produce identical assignments.
TEST(EngineProtocolEquivalenceTest, IdenticalAssignments) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig wconfig;
  wconfig.num_workers = 60;
  wconfig.num_tasks = 60;
  stats::Rng rng(7);
  assign::Workload workload = data::MakeUniformWorkload(region, wconfig, rng);
  data::PerturbWorkload(kDefault, kDefault, rng, workload);

  const double alpha = 0.1, beta = 0.25;
  const reachability::AnalyticalModel model(kDefault);

  // Batch engine run.
  assign::EnginePolicy policy;
  policy.u2u_model = &model;
  policy.u2e_model = &model;
  policy.alpha = alpha;
  policy.beta = beta;
  policy.rank = assign::RankStrategy::kProbability;
  policy.worker_params = kDefault;
  policy.task_params = kDefault;
  assign::ScGuardEngine engine(policy);
  stats::Rng engine_rng(8);
  const assign::MatchResult engine_result = engine.Run(workload, engine_rng);

  // Party-level protocol run over the same noisy data: wrap each worker in
  // a device whose registration reuses the already-perturbed location.
  core::TaskingServer server(&model, alpha);
  std::vector<core::WorkerDevice> devices;
  for (const auto& w : workload.workers) {
    devices.emplace_back(w.id, w.location, w.reach_radius_m, kDefault);
    server.RegisterWorker({w.id, w.noisy_location, w.reach_radius_m});
  }
  core::ProtocolCoordinator coordinator(&server, &model, beta);
  std::set<std::pair<int64_t, int64_t>> protocol_pairs;
  int64_t protocol_disclosures = 0;
  for (const auto& t : workload.tasks) {
    core::RequesterDevice requester(t.id, t.location, kDefault);
    const core::TaskRequest request{t.id, t.noisy_location};
    const core::TaskOutcome outcome =
        coordinator.AssignTask(requester, request, devices);
    protocol_disclosures += outcome.disclosures;
    if (outcome.assigned_worker.has_value()) {
      protocol_pairs.insert({t.id, *outcome.assigned_worker});
    }
  }

  std::set<std::pair<int64_t, int64_t>> engine_pairs;
  for (const auto& a : engine_result.assignments) {
    engine_pairs.insert({a.task_id, a.worker_id});
  }
  EXPECT_EQ(engine_pairs, protocol_pairs);
  EXPECT_EQ(engine_result.metrics.requester_to_worker_msgs, protocol_disclosures);
}

// Paper Sec. V-B1, first result: the analytical model performs as well as
// the empirical one.
TEST(PaperShapeTest, AnalyticalTracksEmpirical) {
  const auto runner = sim::ExperimentRunner::Create(SmallExperiment());
  ASSERT_TRUE(runner.ok());

  assign::AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  assign::MatcherHandle model_based = assign::MakeProbabilisticModel(params);

  reachability::EmpiricalModelConfig empirical_config;
  empirical_config.region = runner->region();
  empirical_config.num_samples = 100000;
  stats::Rng build_rng(9);
  auto empirical = reachability::EmpiricalModel::Build(empirical_config,
                                                       kDefault, build_rng);
  ASSERT_TRUE(empirical.ok());
  assign::MatcherHandle data_based = assign::MakeProbabilisticData(
      params, std::make_shared<const reachability::EmpiricalModel>(
                  std::move(*empirical)));

  const auto model_agg = runner->Run(model_based, kDefault, kDefault);
  const auto data_agg = runner->Run(data_based, kDefault, kDefault);
  ASSERT_TRUE(model_agg.ok() && data_agg.ok());
  // Within 15% utility of each other.
  EXPECT_NEAR(model_agg->assigned_tasks, data_agg->assigned_tasks,
              0.15 * data_agg->assigned_tasks + 3.0);
}

// Paper Sec. V-B1, second result: Probabilistic-Model beats Oblivious-RN on
// utility and privacy leak under meaningful noise.
TEST(PaperShapeTest, ProbabilisticBeatsOblivious) {
  const auto runner = sim::ExperimentRunner::Create(SmallExperiment());
  ASSERT_TRUE(runner.ok());
  // The paper's default point: noisy enough that the oblivious baseline
  // suffers, but not so strict that the beta threshold cancels every task
  // (at (0.4, 1400) even the best candidate's U2E probability sits below
  // the default beta = 0.25 — a real property of the paper's thresholding,
  // exercised elsewhere).
  const PrivacyParams strict{0.7, 800.0};

  assign::AlgorithmParams params;
  params.worker_params = strict;
  params.task_params = strict;
  assign::MatcherHandle probabilistic = assign::MakeProbabilisticModel(params);
  assign::MatcherHandle oblivious =
      assign::MakeOblivious(assign::RankStrategy::kNearest, params);

  const auto prob = runner->Run(probabilistic, strict, strict);
  const auto obl = runner->Run(oblivious, strict, strict);
  ASSERT_TRUE(prob.ok() && obl.ok());
  EXPECT_GT(prob->assigned_tasks, obl->assigned_tasks);
  EXPECT_LT(prob->false_hits, obl->false_hits);
  // Probability ranking favors large-R_w workers over the nearest noisy
  // one, so travel is roughly a wash rather than the paper's 2/3 factor
  // (see EXPERIMENTS.md); assert it does not degrade materially.
  EXPECT_LE(prob->travel_m, obl->travel_m * 1.15);
}

// Paper Sec. V-B1, third result: privacy does not destroy utility — the
// probabilistic algorithm stays within a moderate factor of ground truth.
TEST(PaperShapeTest, PrivacyCostIsBounded) {
  const auto runner = sim::ExperimentRunner::Create(SmallExperiment());
  ASSERT_TRUE(runner.ok());
  assign::AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  assign::MatcherHandle probabilistic = assign::MakeProbabilisticModel(params);
  assign::MatcherHandle exact =
      assign::MakeGroundTruth(assign::RankStrategy::kNearest);
  const auto prob = runner->Run(probabilistic, kDefault, kDefault);
  const auto truth = runner->Run(exact, kDefault, kDefault);
  ASSERT_TRUE(prob.ok() && truth.ok());
  EXPECT_GE(prob->assigned_tasks, 0.6 * truth->assigned_tasks);
  EXPECT_LE(prob->assigned_tasks, truth->assigned_tasks + 2.0);
}

// Less privacy -> utility approaches ground truth monotonically (Fig. 9a's
// trend, coarse-grained to avoid seed noise).
TEST(PaperShapeTest, UtilityImprovesWithEpsilon) {
  const auto runner = sim::ExperimentRunner::Create(SmallExperiment());
  ASSERT_TRUE(runner.ok());
  double utility_strict, utility_loose;
  {
    const PrivacyParams p{0.1, 800.0};
    assign::AlgorithmParams params;
    params.worker_params = p;
    params.task_params = p;
    assign::MatcherHandle handle = assign::MakeProbabilisticModel(params);
    utility_strict = runner->Run(handle, p, p)->assigned_tasks;
  }
  {
    const PrivacyParams p{1.0, 800.0};
    assign::AlgorithmParams params;
    params.worker_params = p;
    params.task_params = p;
    assign::MatcherHandle handle = assign::MakeProbabilisticModel(params);
    utility_loose = runner->Run(handle, p, p)->assigned_tasks;
  }
  EXPECT_GT(utility_loose, utility_strict);
}

// End-to-end facade on the synthetic T-Drive pipeline.
TEST(FacadeIntegrationTest, FullPipelineThroughScGuard) {
  const auto runner = sim::ExperimentRunner::Create(SmallExperiment());
  ASSERT_TRUE(runner.ok());
  const auto workload = runner->MakeWorkload(0, kDefault, kDefault);
  ASSERT_TRUE(workload.ok());

  core::ScGuardOptions options;
  options.algorithm = core::AlgorithmKind::kProbabilisticModel;
  options.worker_params = kDefault;
  options.task_params = kDefault;
  auto guard = core::ScGuard::Create(options);
  ASSERT_TRUE(guard.ok());
  stats::Rng rng(10);
  const assign::MatchResult result = guard->Assign(*workload, rng);
  EXPECT_GT(result.metrics.assigned_tasks, 0);
  // Every accepted assignment is valid.
  for (const auto& a : result.assignments) {
    const auto& w = workload->workers[static_cast<size_t>(a.worker_id)];
    const auto& t = workload->tasks[static_cast<size_t>(a.task_id)];
    EXPECT_TRUE(w.CanReach(t.location));
  }
}

}  // namespace
}  // namespace scguard
