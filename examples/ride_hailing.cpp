// Ride hailing through the party-level protocol (paper Fig. 2): taxi
// drivers register perturbed locations with an untrusted dispatch server;
// each ride request is matched through the three stages U2U -> U2E -> E2E
// with explicit messages, so you can see exactly which party learns what.
//
// Build & run:  ./build/examples/ride_hailing

#include <iostream>

#include "core/protocol.h"
#include "data/beijing.h"
#include "data/tdrive_synth.h"
#include "data/workload.h"
#include "reachability/analytical_model.h"

int main() {
  using namespace scguard;

  const privacy::PrivacyParams params{0.7, 800.0};
  stats::Rng rng(7);

  // A synthetic Beijing evening: drivers idle at their last drop-offs.
  data::TDriveSynthConfig synth_config;
  synth_config.num_taxis = 400;
  const geo::BoundingBox region = data::BeijingRegion();
  auto synth = data::TDriveSynthesizer::Create(synth_config, region, rng);
  if (!synth.ok()) {
    std::cerr << synth.status() << "\n";
    return 1;
  }
  const std::vector<data::Trip> trips = synth->GenerateTrips(rng);
  data::WorkloadConfig workload_config;
  workload_config.num_workers = 150;
  workload_config.num_tasks = 60;
  auto workload = data::BuildWorkloadFromTrips(trips, workload_config, rng);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }

  // --- Registration: each driver's device perturbs its own location ----
  const reachability::AnalyticalModel model(params);
  core::TaskingServer server(&model, /*alpha=*/0.1);
  std::vector<core::WorkerDevice> drivers;
  drivers.reserve(workload->workers.size());
  for (const auto& w : workload->workers) {
    drivers.emplace_back(w.id, w.location, w.reach_radius_m, params);
    server.RegisterWorker(drivers.back().Register(rng));
  }
  std::cout << "registered " << server.available_workers()
            << " drivers (server only ever sees perturbed locations)\n\n";

  // --- Online ride requests --------------------------------------------
  core::ProtocolCoordinator coordinator(&server, &model, /*beta=*/0.25);
  int assigned = 0;
  for (const auto& task : workload->tasks) {
    core::RequesterDevice rider(task.id, task.location, params);
    const core::TaskRequest request = rider.Submit(rng);
    const core::TaskOutcome outcome =
        coordinator.AssignTask(rider, request, drivers);
    if (outcome.assigned_worker.has_value()) {
      ++assigned;
      if (assigned <= 5) {
        std::cout << "ride " << task.id << ": " << outcome.candidates
                  << " candidates -> driver " << *outcome.assigned_worker
                  << " accepted after " << outcome.disclosures
                  << " disclosure(s)\n";
      }
    }
  }

  const core::ProtocolTrace& trace = coordinator.trace();
  std::cout << "\n--- day summary ---\n"
            << "rides assigned:            " << assigned << "/"
            << workload->tasks.size() << "\n"
            << "candidate lists sent:      " << trace.candidate_lists_sent << "\n"
            << "pickup-location disclosures: " << trace.task_location_disclosures
            << " (of which " << trace.rejections << " to rejecting drivers)\n"
            << "drivers still available:   " << server.available_workers()
            << "\n";
  return 0;
}
