#ifndef SCGUARD_RUNTIME_RUNTIME_OPTIONS_H_
#define SCGUARD_RUNTIME_RUNTIME_OPTIONS_H_

namespace scguard::runtime {

/// Parallelism knob threaded through the hot paths (experiment seed
/// fan-out, empirical-table builds, bench harnesses).
///
/// The determinism contract (see DESIGN.md §6): for any fixed workload
/// configuration, results are bit-identical for every value of
/// `num_threads`. Parallelism only changes wall-clock, never numbers.
struct RuntimeOptions {
  /// Worker threads to use. 0 = one per hardware thread
  /// (std::thread::hardware_concurrency); 1 = the exact legacy serial
  /// path (no pool is created at all).
  int num_threads = 0;

  /// `num_threads` with 0 resolved to the hardware thread count (always
  /// >= 1). Defined in thread_pool.cc.
  int ResolvedThreads() const;
};

}  // namespace scguard::runtime

#endif  // SCGUARD_RUNTIME_RUNTIME_OPTIONS_H_
