# Empty compiler generated dependencies file for build_empirical_model.
# This may be replaced when dependencies are built.
