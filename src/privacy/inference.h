#ifndef SCGUARD_PRIVACY_INFERENCE_H_
#define SCGUARD_PRIVACY_INFERENCE_H_

#include <functional>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"
#include "privacy/privacy_params.h"

namespace scguard::privacy {

/// A Bayesian adversary against location reports: given the public prior
/// over locations (e.g. the city's demand surface) and an observed report,
/// computes the posterior over a discrete grid and summary attack metrics.
///
/// This is the standard evaluation companion of geo-indistinguishability
/// (Shokri et al.'s "expected inference error" framework): the Geo-I bound
/// limits how much any such adversary can concentrate its posterior, and
/// this class measures how close a concrete adversary gets — making the
/// paper's "minimal disclosure" claims empirically checkable, for both the
/// planar Laplace mechanism and the cloaking baseline of the related work.
class BayesianAdversary {
 public:
  /// Prior density over the region, evaluated at grid-cell centers (need
  /// not be normalized). `cells_per_axis` controls the grid resolution.
  BayesianAdversary(const geo::BoundingBox& region, int cells_per_axis,
                    std::function<double(geo::Point)> prior_density);

  /// Uniform prior over the region.
  BayesianAdversary(const geo::BoundingBox& region, int cells_per_axis);

  /// Posterior over grid cells after observing `report` from a planar
  /// Laplace mechanism with per-meter budget `unit_epsilon`.
  /// posterior(cell) ∝ prior(cell) * exp(-eps * d(cell, report)).
  std::vector<double> PosteriorLaplace(geo::Point report,
                                       double unit_epsilon) const;

  /// Posterior after observing a cloaking rectangle: the adversary knows
  /// the true location lies inside `cloak`, so the posterior is the prior
  /// restricted to it.
  std::vector<double> PosteriorCloak(const geo::BoundingBox& cloak) const;

  /// Attack summary for a posterior (as returned by the Posterior*
  /// functions) against the true location.
  struct AttackResult {
    /// Expected Euclidean distance between the adversary's posterior and
    /// the true location (expected inference error; higher = safer).
    double expected_error_m = 0;
    /// Distance from the posterior mode (MAP estimate) to the truth.
    double map_error_m = 0;
    /// Posterior probability mass within `radius_of_concern` of the truth
    /// — the quantity (eps, r)-Geo-I is designed to keep small.
    double mass_within_r = 0;
  };
  AttackResult Evaluate(const std::vector<double>& posterior,
                        geo::Point true_location,
                        double radius_of_concern) const;

  int cells_per_axis() const { return cells_; }
  geo::Point CellCenter(int index) const;

 private:
  geo::BoundingBox region_;
  int cells_;
  double cell_w_;
  double cell_h_;
  std::vector<double> prior_;  // Normalized over cells.
};

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_INFERENCE_H_
