#ifndef SCGUARD_SIM_DYNAMIC_H_
#define SCGUARD_SIM_DYNAMIC_H_

#include <vector>

#include "assign/algorithms.h"
#include "data/trip_model.h"
#include "privacy/privacy_params.h"
#include "stats/rng.h"

namespace scguard::sim {

/// How moving workers refresh their reported locations across rounds
/// (paper Sec. VII, "protection for dynamic workers and tasks").
enum class ReportingStrategy {
  /// Perturb once at round 0 with the full budget and never refresh: the
  /// (eps, r) guarantee holds forever, but the report goes stale as the
  /// worker moves.
  kReportOnce,
  /// Re-perturb every round at the full budget: reports stay fresh, but
  /// sequential composition degrades the joint guarantee to
  /// (rounds * eps, r) — the effective epsilon grows every round.
  kNaiveRefresh,
  /// Re-perturb every round at eps / rounds (location-set budgeting): the
  /// joint guarantee stays (eps, r), at the price of much noisier reports
  /// — the linear noise growth the paper predicts.
  kLocationSetSplit,
};

constexpr std::string_view ReportingStrategyName(ReportingStrategy s) {
  switch (s) {
    case ReportingStrategy::kReportOnce:
      return "report-once";
    case ReportingStrategy::kNaiveRefresh:
      return "naive-refresh";
    case ReportingStrategy::kLocationSetSplit:
      return "location-set-split";
  }
  return "?";
}

/// Multi-round dynamic-worker experiment configuration.
struct DynamicConfig {
  int rounds = 8;
  int num_workers = 250;
  int tasks_per_round = 80;
  /// Random-waypoint movement: distance each worker travels between
  /// rounds, uniform in [0, max_move_m].
  double max_move_m = 3000.0;
  double reach_min_m = 1000.0;
  double reach_max_m = 3000.0;
  /// Joint privacy target over the whole horizon.
  privacy::PrivacyParams joint{0.7, 800.0};
  double alpha = 0.1;
  double beta = 0.25;
  uint64_t seed = 42;
};

/// Per-round outcome of a dynamic run.
struct DynamicRoundMetrics {
  int round = 0;
  double assigned = 0;          ///< Of tasks_per_round.
  double travel_m = 0;          ///< Mean over assigned.
  double false_hits = 0;
  /// Worst-case epsilon an adversary can use against a worker's whole
  /// trace after this round (sequential composition of all reports).
  double effective_epsilon = 0;
  /// Mean distance between workers' true and reported locations — report
  /// staleness plus noise.
  double report_error_m = 0;
};

/// Simulates `rounds` of online assignment with moving workers under a
/// reporting strategy; workers matched in a round complete their task and
/// return to the pool the next round at the task's location.
std::vector<DynamicRoundMetrics> RunDynamicWorkers(const DynamicConfig& config,
                                                   ReportingStrategy strategy);

}  // namespace scguard::sim

#endif  // SCGUARD_SIM_DYNAMIC_H_
