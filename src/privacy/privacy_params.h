#ifndef SCGUARD_PRIVACY_PRIVACY_PARAMS_H_
#define SCGUARD_PRIVACY_PRIVACY_PARAMS_H_

#include <cstdint>

#include "common/result.h"
#include "geo/bbox.h"

namespace scguard::privacy {

/// Which obfuscation mechanism realizes the (eps, r) guarantee. All kinds
/// share the PrivacyParams budget semantics; they differ in how the noise
/// is distributed (and therefore in utility at equal epsilon).
enum class MechanismKind : uint8_t {
  /// Continuous planar Laplace of Andrés et al. (CCS'13) — the paper's
  /// mechanism and the default everywhere. The only kind with closed-form
  /// DiskProbability, so the only one the analytical model accepts.
  kPlanarLaplace = 0,
  /// Grid-discretized obfuscation matrix (Geo-MOEA style, arXiv 2201.11300):
  /// a per-cell perturbation distribution over target cells sampled via
  /// alias tables, with uniform jitter inside the landed cell.
  kGeoMatrix = 1,
  /// Grid matrix whose rows are re-weighted by a location prior learned from
  /// (synthetic T-Drive) history (arXiv 2008.03475): probable cells soak up
  /// more of the noise mass, trading worst-case spread for expected utility.
  kPriorEmpirical = 2,
};

const char* MechanismKindName(MechanismKind kind);

/// Mechanism selection plus the knobs the non-Laplace kinds need. Carried
/// inside PrivacyParams so every perturbation site (workload generation,
/// empirical-table builds, dynamic sim, protocol parties, service
/// reporters) constructs the same mechanism from the same spec — the spec
/// is the full provenance of the noise.
struct MechanismSpec {
  MechanismKind kind = MechanismKind::kPlanarLaplace;

  /// Grid resolution per axis for the matrix kinds (cells = grid_cells^2).
  /// Coarse on purpose: rows are dense, so memory and build cost are
  /// O(grid_cells^4).
  int grid_cells = 24;

  /// Domain the matrix kinds discretize. Empty (the default) means "use the
  /// caller's region" (MakeMechanism's fallback_region); the planar-Laplace
  /// kind ignores it.
  geo::BoundingBox region{};

  /// Seed of the synthetic-history stream the prior-empirical kind learns
  /// its prior from, and the number of history points drawn. The prior is
  /// a pure function of (region, grid_cells, prior_seed, prior_samples) so
  /// distinct sites reconstruct identical mechanisms.
  uint64_t prior_seed = 4242;
  int prior_samples = 50000;

  friend bool operator==(const MechanismSpec& a, const MechanismSpec& b) {
    return a.kind == b.kind && a.grid_cells == b.grid_cells &&
           a.region == b.region && a.prior_seed == b.prior_seed &&
           a.prior_samples == b.prior_samples;
  }
};

/// The (eps, r) pair of constrained geo-indistinguishability (paper Sec. II).
///
/// `epsilon` is the privacy level and `radius_m` the radius of concern in
/// meters: any two true locations within `radius_m` of each other produce
/// observation distributions within multiplicative distance
/// `epsilon * d(x, x') / radius_m <= epsilon`. Equivalently, the planar
/// Laplace mechanism is run with a per-meter budget of
/// `unit_epsilon() = epsilon / radius_m`.
struct PrivacyParams {
  double epsilon = 0.7;    ///< Total budget over the radius of concern.
  double radius_m = 800.0; ///< Radius of concern, meters.

  /// Which mechanism spends the budget (default: planar Laplace, matching
  /// the paper). See privacy/mechanism.h.
  MechanismSpec mechanism{};

  /// The per-meter epsilon the planar Laplace sampler consumes.
  double unit_epsilon() const { return epsilon / radius_m; }

  /// OK iff epsilon > 0 and radius_m > 0 (and the grid kinds are sized).
  Status Validate() const {
    if (!(epsilon > 0.0)) return Status::InvalidArgument("epsilon must be > 0");
    if (!(radius_m > 0.0)) return Status::InvalidArgument("radius_m must be > 0");
    if (mechanism.kind != MechanismKind::kPlanarLaplace &&
        mechanism.grid_cells < 2) {
      return Status::InvalidArgument("mechanism.grid_cells must be >= 2");
    }
    if (mechanism.kind == MechanismKind::kPriorEmpirical &&
        mechanism.prior_samples < 1) {
      return Status::InvalidArgument("mechanism.prior_samples must be >= 1");
    }
    return Status::OK();
  }

  friend bool operator==(const PrivacyParams& a, const PrivacyParams& b) {
    return a.epsilon == b.epsilon && a.radius_m == b.radius_m &&
           a.mechanism == b.mechanism;
  }
};

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_PRIVACY_PARAMS_H_
