#ifndef SCGUARD_GEO_POINT_H_
#define SCGUARD_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace scguard::geo {

/// A point (or displacement) in a local planar coordinate system, in meters.
///
/// All assignment-time geometry in SCGuard is planar: latitude/longitude
/// inputs are projected once (see projection.h) and every distance after
/// that is Euclidean, matching the paper's `d(x, x')`.
struct Point {
  double x = 0.0;  ///< East offset in meters.
  double y = 0.0;  ///< North offset in meters.

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point p, double s) { return {p.x * s, p.y * s}; }
  friend Point operator*(double s, Point p) { return p * s; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }

  /// Euclidean norm of this point viewed as a vector from the origin.
  double Norm() const { return std::hypot(x, y); }
};

/// Euclidean distance between two points, in meters.
inline double Distance(Point a, Point b) { return std::hypot(a.x - b.x, a.y - b.y); }

/// Squared Euclidean distance (avoids the sqrt for comparisons).
inline double SquaredDistance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline std::ostream& operator<<(std::ostream& os, Point p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

}  // namespace scguard::geo

#endif  // SCGUARD_GEO_POINT_H_
