// Parameterized property tests: invariants that must hold across the whole
// (eps, r, alpha, beta, seed) grid, not just at hand-picked points.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include <sstream>

#include "assign/algorithms.h"
#include "data/csv_loader.h"
#include "data/trace.h"
#include "data/workload.h"
#include "privacy/planar_laplace.h"
#include "reachability/analytical_model.h"
#include "stats/marcum_q.h"
#include "stats/rice.h"
#include "stats/rng.h"

namespace scguard {
namespace {

using privacy::PrivacyParams;

// ---------------------------------------------------- Planar Laplace grid

class PlanarLaplaceProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PlanarLaplaceProperty, SampledRadiusMatchesAnalyticCdf) {
  const auto [eps, r] = GetParam();
  const privacy::PlanarLaplace pl(eps / r);
  stats::Rng rng(static_cast<uint64_t>(eps * 1000 + r));
  const int n = 20000;
  const double median = pl.InverseRadialCdf(0.5);
  int below = 0;
  for (int i = 0; i < n; ++i) below += pl.Sample(rng).Norm() <= median ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.015)
      << "eps=" << eps << " r=" << r;
}

TEST_P(PlanarLaplaceProperty, InverseCdfIsIncreasing) {
  const auto [eps, r] = GetParam();
  const privacy::PlanarLaplace pl(eps / r);
  double prev = -1.0;
  for (double p = 0.0; p < 1.0; p += 0.05) {
    const double value = pl.InverseRadialCdf(p);
    EXPECT_GT(value, prev);
    prev = value;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrivacyGrid, PlanarLaplaceProperty,
    ::testing::Combine(::testing::Values(0.1, 0.4, 0.7, 1.0),
                       ::testing::Values(200.0, 800.0, 1400.0, 2000.0)));

// -------------------------------------------------- Rice CDF vs sampling

class RiceProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RiceProperty, CdfMatchesGaussianSimulation) {
  const auto [nu, sigma] = GetParam();
  const stats::RiceDistribution rice(nu, sigma);
  stats::Rng rng(static_cast<uint64_t>(nu * 13 + sigma * 7 + 1));
  const int n = 40000;
  const double at = nu + 0.5 * sigma;
  int below = 0;
  for (int i = 0; i < n; ++i) {
    const double x = nu + sigma * rng.Gaussian();
    const double y = sigma * rng.Gaussian();
    below += std::hypot(x, y) <= at ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, rice.Cdf(at), 0.012)
      << "nu=" << nu << " sigma=" << sigma;
}

INSTANTIATE_TEST_SUITE_P(
    RiceGrid, RiceProperty,
    ::testing::Combine(::testing::Values(0.0, 200.0, 1500.0, 5000.0),
                       ::testing::Values(300.0, 1600.0, 4000.0)));

// ----------------------------------------- Noncentral chi-squared sanity

class MarcumProperty : public ::testing::TestWithParam<double> {};

TEST_P(MarcumProperty, CdfIsAProperDistribution) {
  const double lambda = GetParam();
  double prev = 0.0;
  for (double x = 0.0; x <= 50.0 * (1.0 + lambda); x += (1.0 + lambda) / 4.0) {
    const double p = stats::NoncentralChiSquaredCdf(2.0, lambda, x);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(LambdaGrid, MarcumProperty,
                         ::testing::Values(0.0, 0.5, 2.0, 10.0, 100.0, 2000.0));

// ----------------------------------------- Analytical model, whole grid

class AnalyticalModelProperty
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(AnalyticalModelProperty, ProbabilitiesAreMonotoneAndBounded) {
  const auto [eps, r, mode_idx] = GetParam();
  const auto mode = static_cast<reachability::AnalyticalMode>(mode_idx);
  const reachability::AnalyticalModel model(PrivacyParams{eps, r}, mode);
  for (auto stage : {reachability::Stage::kU2U, reachability::Stage::kU2E}) {
    double prev = 1.0 + 1e-9;
    for (double d = 0.0; d <= 15000.0; d += 500.0) {
      const double p = model.ProbReachable(stage, d, 1400.0);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      EXPECT_LE(p, prev + 1e-9) << "eps=" << eps << " r=" << r << " d=" << d;
      prev = p;
    }
    // Radius monotonicity at a fixed distance.
    EXPECT_LE(model.ProbReachable(stage, 2000.0, 1000.0),
              model.ProbReachable(stage, 2000.0, 3000.0) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelGrid, AnalyticalModelProperty,
    ::testing::Combine(::testing::Values(0.1, 0.4, 0.7, 1.0),
                       ::testing::Values(200.0, 800.0, 2000.0),
                       ::testing::Values(0, 1, 2, 3)));  // All four modes.

// ------------------------------------------------ Matching competitiveness

// Maximum bipartite matching via augmenting paths (Kuhn), used as the
// offline optimum the online algorithms are compared against.
int MaxBipartiteMatching(const std::vector<std::vector<int>>& adjacency,
                         int num_workers) {
  std::vector<int> match_worker(static_cast<size_t>(num_workers), -1);
  std::vector<bool> visited;
  std::function<bool(int)> augment = [&](int task) -> bool {
    for (int w : adjacency[static_cast<size_t>(task)]) {
      if (visited[static_cast<size_t>(w)]) continue;
      visited[static_cast<size_t>(w)] = true;
      if (match_worker[static_cast<size_t>(w)] < 0 ||
          augment(match_worker[static_cast<size_t>(w)])) {
        match_worker[static_cast<size_t>(w)] = task;
        return true;
      }
    }
    return false;
  };
  int matched = 0;
  for (int t = 0; t < static_cast<int>(adjacency.size()); ++t) {
    visited.assign(static_cast<size_t>(num_workers), false);
    matched += augment(t) ? 1 : 0;
  }
  return matched;
}

class MatchingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingProperty, RankingIsHalfCompetitive) {
  // Any greedy maximal matching (which Ranking produces) matches at least
  // half of the offline optimum; with random ranks the guarantee is
  // (1 - 1/e), but 1/2 is the hard floor we can assert per instance.
  const uint64_t seed = GetParam();
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {15000, 15000});
  data::WorkloadConfig config;
  config.num_workers = 80;
  config.num_tasks = 80;
  stats::Rng rng(seed);
  const assign::Workload w = data::MakeUniformWorkload(region, config, rng);

  std::vector<std::vector<int>> adjacency(w.tasks.size());
  for (size_t t = 0; t < w.tasks.size(); ++t) {
    for (size_t i = 0; i < w.workers.size(); ++i) {
      if (w.workers[i].CanReach(w.tasks[t].location)) {
        adjacency[t].push_back(static_cast<int>(i));
      }
    }
  }
  const int optimal =
      MaxBipartiteMatching(adjacency, static_cast<int>(w.workers.size()));

  assign::MatcherHandle ranking =
      assign::MakeGroundTruth(assign::RankStrategy::kRandom);
  stats::Rng match_rng(seed + 1);
  const auto result = ranking.Run(w, match_rng);
  EXPECT_GE(2 * result.metrics.assigned_tasks, optimal) << "seed " << seed;
  EXPECT_LE(result.metrics.assigned_tasks, optimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ------------------------------------------------ Engine invariant sweep

class EngineInvariantProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EngineInvariantProperty, AccountingHoldsAcrossThresholds) {
  const auto [eps, alpha, beta] = GetParam();
  const PrivacyParams params{eps, 800.0};
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig wconfig;
  wconfig.num_workers = 60;
  wconfig.num_tasks = 60;
  stats::Rng rng(static_cast<uint64_t>(eps * 100 + alpha * 1000 + beta * 10));
  assign::Workload w = data::MakeUniformWorkload(region, wconfig, rng);
  data::PerturbWorkload(params, params, rng, w);

  assign::AlgorithmParams aparams;
  aparams.worker_params = params;
  aparams.task_params = params;
  aparams.alpha = alpha;
  aparams.beta = beta;
  assign::MatcherHandle handle = assign::MakeProbabilisticModel(aparams);
  const auto result = handle.Run(w, rng);
  const auto& m = result.metrics;

  EXPECT_EQ(m.requester_to_worker_msgs, m.accepted_assignments + m.false_hits);
  EXPECT_LE(m.assigned_tasks, m.num_tasks);
  EXPECT_LE(m.accepted_assignments, m.num_workers);
  EXPECT_LE(m.requester_to_worker_msgs, m.candidates_sum);
  EXPECT_GE(m.MeanPrecision(), 0.0);
  EXPECT_LE(m.MeanPrecision(), 1.0);
  EXPECT_GE(m.MeanRecall(), 0.0);
  EXPECT_LE(m.MeanRecall(), 1.0);
  // Every accepted pair is valid.
  for (const auto& a : result.assignments) {
    EXPECT_TRUE(
        w.workers[static_cast<size_t>(a.worker_id)].CanReach(
            w.tasks[static_cast<size_t>(a.task_id)].location));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdGrid, EngineInvariantProperty,
    ::testing::Combine(::testing::Values(0.1, 0.7),
                       ::testing::Values(0.05, 0.2, 0.4),
                       ::testing::Values(0.0, 0.25, 0.4)));

// -------------------------------------------------- Loader fuzz property

class LoaderFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LoaderFuzzProperty, GarbageNeverCrashesLoaders) {
  // Random byte soup (printable-ish, with plenty of commas and newlines)
  // must always produce a Status or a parsed result — never a crash.
  stats::Rng rng(GetParam());
  static constexpr char kAlphabet[] = "0123456789.,-+eE ,\nabcxyz,\n";
  std::string blob;
  const size_t len = 200 + rng.UniformInt(2000);
  for (size_t i = 0; i < len; ++i) {
    blob += kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
  }
  {
    std::stringstream ss(blob);
    const auto result = data::LoadTripsCsv(ss);
    if (result.ok()) {
      for (const auto& t : *result) {
        EXPECT_GE(t.dropoff_time_s, t.pickup_time_s);
      }
    }
  }
  {
    std::stringstream ss(blob);
    (void)data::LoadFixesCsv(ss);  // Must not crash; any Status is fine.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoaderFuzzProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace scguard
