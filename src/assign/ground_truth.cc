#include "assign/ground_truth.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/check.h"
#include "common/str_format.h"

namespace scguard::assign {

GroundTruthMatcher::GroundTruthMatcher(RankStrategy strategy)
    : strategy_(strategy) {
  SCGUARD_CHECK(strategy == RankStrategy::kRandom ||
                strategy == RankStrategy::kNearest);
}

std::string GroundTruthMatcher::name() const {
  return StrCat("GroundTruth-", RankStrategyName(strategy_));
}

MatchResult GroundTruthMatcher::Run(const Workload& workload, stats::Rng& rng) {
  const auto t0 = std::chrono::steady_clock::now();
  MatchResult result;
  RunMetrics& m = result.metrics;
  m.num_tasks = static_cast<int64_t>(workload.tasks.size());
  m.num_workers = static_cast<int64_t>(workload.workers.size());

  // Ranking associates a random priority with every worker up front.
  std::vector<double> random_rank(workload.workers.size());
  for (auto& r : random_rank) r = rng.UniformDouble();

  std::vector<bool> matched(workload.workers.size(), false);

  for (const Task& task : workload.tasks) {
    // With exact locations the candidate set is exactly the reachable
    // available workers.
    size_t best_index = workload.workers.size();  // Sentinel: none.
    double best_score = -std::numeric_limits<double>::infinity();
    int64_t reachable = 0;
    for (size_t i = 0; i < workload.workers.size(); ++i) {
      if (matched[i]) continue;
      const Worker& w = workload.workers[i];
      if (!w.CanReach(task.location)) continue;
      ++reachable;
      const double score = strategy_ == RankStrategy::kRandom
                               ? random_rank[i]
                               : -geo::Distance(w.location, task.location);
      if (score > best_score) {
        best_score = score;
        best_index = i;
      }
    }
    m.candidates_sum += reachable;
    m.server_to_requester_msgs += 1;
    // Exact candidate sets: precision and recall are 1 whenever defined.
    if (reachable > 0) {
      m.precision_sum += 1.0;
      m.precision_count += 1;
      m.recall_sum += 1.0;
      m.recall_count += 1;
    }
    if (best_index == workload.workers.size()) continue;  // Unassigned.
    matched[best_index] = true;
    const Worker& best = workload.workers[best_index];
    const double travel = geo::Distance(best.location, task.location);
    result.assignments.push_back({task.id, best.id, travel});
    m.assigned_tasks += 1;
    m.accepted_assignments += 1;
    m.travel_sum_m += travel;
    m.requester_to_worker_msgs += 1;  // The one (successful) contact.
  }

  m.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace scguard::assign
