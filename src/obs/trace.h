#ifndef SCGUARD_OBS_TRACE_H_
#define SCGUARD_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/obs_config.h"

namespace scguard::obs {

/// Aggregated timing of every completed span, keyed by the span's full
/// nesting path ("sim.run/engine.run/engine.u2u"). Aggregation instead of
/// an event log keeps memory bounded and the per-span cost flat no matter
/// how long a bench runs; the path encodes the nesting shape, so exports
/// still reconstruct the tree.
///
/// Thread-safety: `Record` takes one mutex per span *end* (span begin is
/// lock-free), which is cheap at the granularity spans are meant for —
/// protocol stages and whole runs, not per-candidate loops. Span counts
/// are deterministic for a fixed configuration; durations of course are
/// not.
class Tracer {
 public:
  struct SpanStats {
    int64_t count = 0;
    double total_seconds = 0.0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The instance Span records into. Never destroyed.
  static Tracer& Global();

  /// Merges one completed span into the aggregate for `path`.
  void Record(const std::string& path, double seconds);

  /// Copy of the aggregates, sorted by path.
  std::map<std::string, SpanStats> Snapshot() const;

  /// {"<path>":{"count":..,"total_seconds":..,"min_seconds":..,
  ///  "max_seconds":..}, ...} sorted by path.
  std::string ToJson() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, SpanStats> spans_;
};

/// RAII timed region. Construction pushes `label` onto a thread-local
/// path stack and reads the clock; destruction pops and records the
/// duration under the '/'-joined path of enclosing labels. Everything is
/// a no-op when observability is disabled at construction time.
///
/// When the flight recorder is on (obs_config.h RecorderEnabled), a Span
/// additionally emits begin/end trace events under its bare label — paying
/// one name intern (a mutex) per construction, which is fine at the
/// coarse stage/run granularity Spans are meant for. Hot per-task paths
/// should use recorder.h's TimedEvent with a pre-interned id instead.
///
/// Labels must be stable literals following `<subsystem>.<region>`
/// (DESIGN.md §7); dynamic strings would explode the aggregate key space.
class Span {
 public:
  explicit Span(std::string_view label);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  bool rec_active_;
  uint16_t rec_name_id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace scguard::obs

#endif  // SCGUARD_OBS_TRACE_H_
