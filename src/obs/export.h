#ifndef SCGUARD_OBS_EXPORT_H_
#define SCGUARD_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace scguard::obs {

/// One JSON object covering the whole observability state — the `metrics`
/// block benches embed in `BENCH_<name>.json`:
///   {"enabled":true,"counters":{...},"gauges":{...},
///    "histograms":{...},"spans":{...}}
std::string SnapshotJson();

/// Prometheus text exposition of the global registry plus the tracer's
/// span aggregates (exported as `scguard_span_seconds_total{path="..."}`).
std::string PrometheusText();

/// Zeroes the global registry and tracer. Benches call this between
/// phases to report per-phase deltas; tests call it for isolation.
void ResetGlobal();

}  // namespace scguard::obs

#endif  // SCGUARD_OBS_EXPORT_H_
