#ifndef SCGUARD_INDEX_GRID_INDEX_H_
#define SCGUARD_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "geo/bbox.h"

namespace scguard::index {

/// A uniform grid over a fixed region indexing (rectangle, id) entries.
///
/// Simpler and often faster than the R-tree for the city-scale, roughly
/// uniform extents SCGuard deals with; both satisfy the same query contract
/// so the U2U pruner can use either (ablated in bench_ablation_pruning).
class GridIndex {
 public:
  /// `region` must be non-empty; `cells_per_axis` >= 1. Entries extending
  /// beyond the region are clamped to the border cells.
  GridIndex(const geo::BoundingBox& region, int cells_per_axis);

  /// Inserts an entry into every cell its rectangle overlaps.
  void Insert(const geo::BoundingBox& box, int64_t id);

  /// Invokes `fn` once per entry whose rectangle intersects `query`
  /// (deduplicated even when the entry spans several cells).
  void Query(const geo::BoundingBox& query,
             const std::function<void(int64_t)>& fn) const;

  /// All entry ids intersecting `query` (unordered, unique).
  std::vector<int64_t> QueryIds(const geo::BoundingBox& query) const;

  /// As above into a caller-owned scratch vector (cleared first), so tight
  /// query loops avoid the per-call allocation.
  void QueryIds(const geo::BoundingBox& query, std::vector<int64_t>& out) const;

  /// Removes every live entry inserted under `id` (tombstoned; cell lists
  /// are left in place and skipped at query time, so removal is O(entries
  /// for id) and never reshuffles other entries). Returns the number of
  /// entries removed — 0 when the id is absent or already removed, making
  /// repeated removal idempotent. A later Insert with the same id makes
  /// the id live again (only the new rectangle is queryable).
  size_t Remove(int64_t id);

  /// Live (inserted and not removed) entries.
  size_t size() const { return live_; }

 private:
  struct CellRange {
    int x0, x1, y0, y1;  // Inclusive cell coordinates.
  };
  CellRange CellsFor(const geo::BoundingBox& box) const;
  size_t CellSlot(int cx, int cy) const {
    return static_cast<size_t>(cy) * static_cast<size_t>(cells_) +
           static_cast<size_t>(cx);
  }

  geo::BoundingBox region_;
  int cells_;
  double cell_w_;
  double cell_h_;
  std::vector<std::vector<size_t>> cells_entries_;  // Cell -> entry indices.
  std::vector<geo::BoundingBox> boxes_;             // Entry index -> box.
  std::vector<int64_t> ids_;                        // Entry index -> id.
  std::vector<uint8_t> removed_;                    // Entry index -> tombstone.
  // Id -> its live entry indices, so Remove(id) finds them without a scan.
  std::unordered_map<int64_t, std::vector<size_t>> live_by_id_;
  size_t live_ = 0;
  // Query-time visited stamps to deduplicate multi-cell entries without
  // allocating per query.
  mutable std::vector<uint32_t> stamps_;
  mutable uint32_t current_stamp_ = 0;
};

}  // namespace scguard::index

#endif  // SCGUARD_INDEX_GRID_INDEX_H_
