#ifndef SCGUARD_ASSIGN_ALGORITHMS_H_
#define SCGUARD_ASSIGN_ALGORITHMS_H_

#include <memory>
#include <optional>
#include <vector>

#include "assign/matcher.h"
#include "assign/stages/candidate_stage.h"
#include "assign/stages/rank_stage.h"
#include "index/pruning.h"
#include "privacy/privacy_params.h"
#include "reachability/analytical_model.h"
#include "reachability/empirical_model.h"

namespace scguard::assign {

/// A ready-to-run matcher together with the reachability models it uses
/// (kept alive alongside it).
struct MatcherHandle {
  std::unique_ptr<OnlineMatcher> matcher;
  std::vector<std::shared_ptr<const reachability::ReachabilityModel>> models;

  MatchResult Run(const Workload& workload, stats::Rng& rng) {
    return matcher->Run(workload, rng);
  }
  std::string name() const { return matcher->name(); }
};

/// Tunables common to the paper's private algorithms (defaults are the
/// paper's boldface defaults of Sec. V-A).
struct AlgorithmParams {
  privacy::PrivacyParams worker_params;
  privacy::PrivacyParams task_params;
  double alpha = 0.1;   ///< U2U threshold (probability-based only).
  double beta = 0.25;   ///< U2E threshold (probability-based only).
  BetaMode beta_mode = BetaMode::kEveryContact;
  int redundancy_k = 1;
  std::optional<double> pruning_gamma;  ///< Enable Sec. IV-C1 pruning.
  index::PrunerBackend pruning_backend = index::PrunerBackend::kGrid;
  reachability::AnalyticalMode analytical_mode =
      reachability::AnalyticalMode::kPaperNormalApprox;
  /// Evaluation-kernel knobs, forwarded to EnginePolicy::kernel.
  reachability::KernelOptions kernel;
  /// Parallel-scan / active-set knobs, forwarded to EnginePolicy::runtime.
  EngineRuntime runtime;
};

/// GroundTruth-RR / GroundTruth-NN: the non-private Ranking upper bound.
MatcherHandle MakeGroundTruth(RankStrategy strategy);

/// Oblivious-RR / Oblivious-RN (Algorithm 1): noisy locations treated as
/// exact; `strategy` must be kRandom (RR) or kNearest (RN).
MatcherHandle MakeOblivious(RankStrategy strategy, const AlgorithmParams& params);

/// Probabilistic-Model (Algorithm 2 with the analytical reachability model
/// of Sec. IV-B1).
MatcherHandle MakeProbabilisticModel(const AlgorithmParams& params);

/// Probabilistic-Data (Algorithm 2 with the empirical model of
/// Sec. IV-B2). The empirical model is built (or loaded) by the caller —
/// it is shared because precomputation is the expensive part.
MatcherHandle MakeProbabilisticData(
    const AlgorithmParams& params,
    std::shared_ptr<const reachability::EmpiricalModel> model);

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_ALGORITHMS_H_
