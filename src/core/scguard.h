#ifndef SCGUARD_CORE_SCGUARD_H_
#define SCGUARD_CORE_SCGUARD_H_

#include <memory>
#include <string>

#include "assign/algorithms.h"
#include "common/result.h"
#include "data/workload.h"

namespace scguard::core {

/// The assignment algorithms of the paper's evaluation (Sec. V-B).
enum class AlgorithmKind {
  kGroundTruthRR,       ///< Ranking with exact locations, random rank.
  kGroundTruthNN,       ///< Ranking with exact locations, nearest worker.
  kObliviousRR,         ///< Algorithm 1, random rank.
  kObliviousRN,         ///< Algorithm 1, nearest (noisy) worker.
  kProbabilisticModel,  ///< Algorithm 2 + analytical model (Sec. IV-B1).
  kProbabilisticData,   ///< Algorithm 2 + empirical model (Sec. IV-B2).
};

std::string_view AlgorithmKindName(AlgorithmKind kind);

/// One-stop configuration for the facade.
struct ScGuardOptions {
  AlgorithmKind algorithm = AlgorithmKind::kProbabilisticModel;
  privacy::PrivacyParams worker_params;  ///< Default (0.7, 800 m).
  privacy::PrivacyParams task_params;
  double alpha = 0.1;
  double beta = 0.25;
  int redundancy_k = 1;
  std::optional<double> pruning_gamma;
  reachability::AnalyticalMode analytical_mode =
      reachability::AnalyticalMode::kPaperNormalApprox;
  /// Used only by kProbabilisticData: geometry/sample count of the
  /// empirical precomputation and the seed for its Monte-Carlo draw. The
  /// region defaults to the workload region at first use if empty.
  reachability::EmpiricalModelConfig empirical;
  uint64_t empirical_seed = 17;
};

/// Facade over the whole library: pick an algorithm, hand in workloads.
///
/// Typical use:
///   auto guard = core::ScGuard::Create(options).ValueOrDie();
///   assign::Workload w = ...;                // build or load
///   data::PerturbWorkload(wp, tp, rng, w);   // device-side Geo-I
///   assign::MatchResult r = guard.Assign(w, rng);
class ScGuard {
 public:
  /// Validates options; for kProbabilisticData runs the empirical
  /// precomputation (the expensive part, done once).
  static Result<ScGuard> Create(const ScGuardOptions& options);

  ScGuard(ScGuard&&) noexcept = default;
  ScGuard& operator=(ScGuard&&) noexcept = default;

  /// Runs online assignment over a (pre-perturbed, unless ground truth)
  /// workload.
  assign::MatchResult Assign(const assign::Workload& workload,
                             stats::Rng& rng);

  /// Perturbs a copy of the workload with the configured privacy levels,
  /// then assigns. Convenience for the common case.
  assign::MatchResult PerturbAndAssign(assign::Workload workload,
                                       stats::Rng& rng);

  const ScGuardOptions& options() const { return options_; }
  std::string algorithm_name() const { return handle_->name(); }

 private:
  ScGuard(ScGuardOptions options, assign::MatcherHandle handle);

  ScGuardOptions options_;
  std::unique_ptr<assign::MatcherHandle> handle_;
};

}  // namespace scguard::core

#endif  // SCGUARD_CORE_SCGUARD_H_
