#include "core/variants.h"

#include <algorithm>

#include "assign/stages/contact_stage.h"
#include "assign/stages/rank_stage.h"
#include "common/check.h"

namespace scguard::core {
namespace {

/// All variants contact one worker at a time until the first accept; the
/// ranked lists are already filtered, so the stage runs without beta gating
/// (Config::beta = 0 disables it).
const assign::E2eContactStage& SequentialContact() {
  static const assign::E2eContactStage stage(
      {.rank = assign::RankStrategy::kProbability, .beta = 0.0,
       .beta_mode = assign::BetaMode::kEveryContact, .redundancy_k = 1});
  return stage;
}

// Worker-side reachability estimate: the worker knows its exact location
// and sees a (possibly degraded) noisy task location, so the estimate is a
// U2E query with the roles mirrored.
double WorkerSideEstimate(const reachability::ReachabilityModel& model,
                          const WorkerDevice& worker, geo::Point noisy_task) {
  return model.ProbReachable(
      reachability::Stage::kU2E,
      geo::Distance(worker.true_location_for_testing(), noisy_task),
      worker.reach_radius_m());
}

VariantOutcome RunSequential(const RequesterDevice& requester,
                             const TaskRequest& request,
                             const std::vector<CandidateWorker>& candidates,
                             const std::vector<WorkerDevice>& workers,
                             const reachability::ReachabilityModel& model,
                             double beta) {
  VariantOutcome outcome;
  const std::vector<CandidateWorker> plan =
      requester.RankCandidates(candidates, model, beta);
  const auto o = SequentialContact().ContactPlan(
      plan,
      [&](const CandidateWorker& c) {
        const WorkerDevice& device = workers[static_cast<size_t>(c.worker_id)];
        if (!device.HandleTaskOffer(requester.exact_task_location())) {
          return false;
        }
        outcome.assigned_worker = c.worker_id;
        return true;
      },
      request.task_id, [](const CandidateWorker& c) { return c.worker_id; });
  outcome.task_location_disclosures += o.disclosures;
  return outcome;
}

VariantOutcome RunParallelBroadcast(
    const RequesterDevice& requester, const TaskRequest& request,
    const std::vector<CandidateWorker>& candidates,
    const std::vector<WorkerDevice>& workers,
    const reachability::ReachabilityModel& model, double beta) {
  VariantOutcome outcome;
  // The server broadcasts the *perturbed* task location (already public
  // from the U2U submission — no new task disclosure); each candidate
  // independently decides whether it is likely reachable, and if so
  // reveals its exact location to the requester.
  // Nearest-first = the shared score-desc order on negated distance.
  std::vector<std::pair<double, int64_t>> revealed;  // (-distance, worker id).
  for (const CandidateWorker& c : candidates) {
    const WorkerDevice& device = workers[static_cast<size_t>(c.worker_id)];
    const double estimate =
        WorkerSideEstimate(model, device, request.noisy_location);
    if (estimate < std::max(beta, assign::kMinSelfRevealProbability)) continue;
    // Self-reveal: the requester learns this worker's exact location.
    outcome.worker_location_disclosures += 1;
    revealed.emplace_back(
        -geo::Distance(device.true_location_for_testing(),
                       requester.exact_task_location()),
        c.worker_id);
  }
  assign::SortRankedCandidates(revealed);
  const auto o = SequentialContact().Contact(
      revealed,
      [&](int64_t worker_id) {
        const WorkerDevice& device = workers[static_cast<size_t>(worker_id)];
        if (!device.HandleTaskOffer(requester.exact_task_location())) {
          return false;
        }
        outcome.assigned_worker = worker_id;
        return true;
      },
      request.task_id, assign::UnknownAdmitFilter{});
  outcome.task_location_disclosures += o.disclosures;
  return outcome;
}

VariantOutcome RunServerRanked(const RequesterDevice& requester,
                               const TaskRequest& request,
                               const std::vector<CandidateWorker>& candidates,
                               const std::vector<WorkerDevice>& workers,
                               const reachability::ReachabilityModel& model,
                               stats::Rng& rng) {
  VariantOutcome outcome;
  if (candidates.empty()) return outcome;
  // Every candidate answers the server with a likelihood computed from its
  // own location. Each answer is a new correlated release of that worker's
  // whereabouts, so worker devices degrade to the location-set budget
  // eps / |candidates| for the re-perturbation their answers are based on
  // (paper Sec. III-A / Sec. VII).
  std::vector<std::pair<double, int64_t>> scored;
  for (const CandidateWorker& c : candidates) {
    const WorkerDevice& device = workers[static_cast<size_t>(c.worker_id)];
    const auto set_mechanism = privacy::LocationSetMechanism::Create(
        device.params(), static_cast<int>(candidates.size()));
    SCGUARD_CHECK(set_mechanism.ok());
    const geo::Point degraded =
        set_mechanism->PerturbOne(device.true_location_for_testing(), rng);
    outcome.server_learned_responses += 1;
    // The server scores with the degraded observation vs the noisy task.
    const double score = model.ProbReachable(
        reachability::Stage::kU2U,
        geo::Distance(degraded, request.noisy_location), c.reach_radius_m);
    scored.emplace_back(score, c.worker_id);
  }
  assign::SortRankedCandidates(scored);
  const auto o = SequentialContact().Contact(
      scored,
      [&](int64_t worker_id) {
        const WorkerDevice& device = workers[static_cast<size_t>(worker_id)];
        if (!device.HandleTaskOffer(requester.exact_task_location())) {
          return false;
        }
        outcome.assigned_worker = worker_id;
        return true;
      },
      request.task_id, assign::UnknownAdmitFilter{});
  outcome.task_location_disclosures += o.disclosures;
  return outcome;
}

}  // namespace

VariantOutcome RunU2eVariant(U2eVariant variant,
                             const RequesterDevice& requester,
                             const TaskRequest& request,
                             const std::vector<CandidateWorker>& candidates,
                             const std::vector<WorkerDevice>& workers,
                             const reachability::ReachabilityModel& model,
                             double beta, stats::Rng& rng) {
  switch (variant) {
    case U2eVariant::kSequential:
      return RunSequential(requester, request, candidates, workers, model,
                           beta);
    case U2eVariant::kParallelBroadcast:
      return RunParallelBroadcast(requester, request, candidates, workers,
                                  model, beta);
    case U2eVariant::kServerRanked:
      return RunServerRanked(requester, request, candidates, workers, model,
                             rng);
  }
  return {};
}

}  // namespace scguard::core
