#include "stats/bessel.h"

#include <cmath>

namespace scguard::stats {
namespace {

// Abramowitz & Stegun 9.8.1 / 9.8.2 rational approximations (|error| < 2e-7
// relative, which the power-series below improves on for |x| < 3.75; the
// asymptotic polynomial governs beyond).

double I0SeriesSmall(double ax) {
  // Power series sum_{k} (x^2/4)^k / (k!)^2, |x| <= 3.75 converges fast.
  const double q = ax * ax / 4.0;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 40; ++k) {
    term *= q / (static_cast<double>(k) * static_cast<double>(k));
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return sum;
}

double I1SeriesSmall(double x) {
  // x/2 * sum_k (x^2/4)^k / (k! (k+1)!)
  const double q = x * x / 4.0;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 40; ++k) {
    term *= q / (static_cast<double>(k) * static_cast<double>(k + 1));
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return x / 2.0 * sum;
}

// Asymptotic polynomial for e^{-x} I0(x) * sqrt(x), x >= 3.75 (A&S 9.8.2).
double I0AsymptoticScaled(double ax) {
  const double t = 3.75 / ax;
  const double poly =
      0.39894228 +
      t * (0.01328592 +
           t * (0.00225319 +
                t * (-0.00157565 +
                     t * (0.00916281 +
                          t * (-0.02057706 +
                               t * (0.02635537 +
                                    t * (-0.01647633 + t * 0.00392377)))))));
  return poly / std::sqrt(ax);
}

// Asymptotic polynomial for e^{-x} I1(x) * sqrt(x), x >= 3.75 (A&S 9.8.4).
double I1AsymptoticScaled(double ax) {
  const double t = 3.75 / ax;
  const double poly =
      0.39894228 +
      t * (-0.03988024 +
           t * (-0.00362018 +
                t * (0.00163801 +
                     t * (-0.01031555 +
                          t * (0.02282967 +
                               t * (-0.02895312 +
                                    t * (0.01787654 - t * 0.00420059)))))));
  return poly / std::sqrt(ax);
}

}  // namespace

double BesselI0(double x) {
  const double ax = std::abs(x);
  if (ax < 3.75) return I0SeriesSmall(ax);
  return std::exp(ax) * I0AsymptoticScaled(ax);
}

double BesselI0Scaled(double x) {
  const double ax = std::abs(x);
  if (ax < 3.75) return std::exp(-ax) * I0SeriesSmall(ax);
  return I0AsymptoticScaled(ax);
}

double BesselI1(double x) {
  const double ax = std::abs(x);
  double value;
  if (ax < 3.75) {
    value = I1SeriesSmall(ax);
  } else {
    value = std::exp(ax) * I1AsymptoticScaled(ax);
  }
  return x < 0.0 ? -value : value;
}

double BesselI1Scaled(double x) {
  const double ax = std::abs(x);
  double value;
  if (ax < 3.75) {
    value = std::exp(-ax) * I1SeriesSmall(ax);
  } else {
    value = I1AsymptoticScaled(ax);
  }
  return x < 0.0 ? -value : value;
}

}  // namespace scguard::stats
