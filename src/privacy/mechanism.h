#ifndef SCGUARD_PRIVACY_MECHANISM_H_
#define SCGUARD_PRIVACY_MECHANISM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "privacy/planar_laplace.h"
#include "privacy/privacy_params.h"
#include "stats/rng.h"

namespace scguard::privacy {

/// Abstract obfuscation mechanism (DESIGN.md section 15).
///
/// The protocol is mechanism-agnostic: U2U/U2E consume noise only through a
/// ReachabilityModel, so any distribution satisfying (eps, r)-Geo-I can
/// replace planar Laplace. Every perturbation site — workload generation,
/// empirical-table builds, the dynamic sim's re-reports, the protocol
/// parties, the service reporters — perturbs through this interface,
/// selected by PrivacyParams::mechanism.
///
/// Determinism contract: Perturb is const and thread-safe, consumes a fixed
/// number of draws from `rng` per call for a fixed mechanism instance, and
/// two mechanisms constructed from equal (PrivacyParams, region) are
/// behaviorally identical. This is what keeps sharded empirical builds
/// thread-count invariant and seeds reproducible.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Reports a perturbed location for the true location `x`.
  virtual geo::Point Perturb(geo::Point x, stats::Rng& rng) const = 0;

  /// Perturbs `n` points drawing from one stream in index order. The default
  /// loops over Perturb; implementations may override with a vectorized path
  /// provided the rng draw order is unchanged.
  virtual void PerturbBatch(const geo::Point* xs, size_t n, stats::Rng& rng,
                            geo::Point* out) const;

  /// Exact probability that the perturbed point lands inside a disk of
  /// radius `disk_radius_m` centered `center_distance_m` away from the true
  /// location, where analytically known; nullopt otherwise (callers fall
  /// back to the empirical table path). Only planar Laplace has a closed
  /// form today.
  virtual std::optional<double> DiskProbability(double center_distance_m,
                                                double disk_radius_m) const;

  /// Radius containing the true location with probability >= gamma given a
  /// reported location. Used to size the U2U pruning rectangles (paper
  /// Sec. IV-C1); conservative over-covering is sound, under-covering is
  /// not.
  virtual double ConfidenceRadius(double gamma) const = 0;

  /// Stable mechanism identifier for provenance ("planar-laplace", ...).
  virtual std::string_view name() const = 0;

  /// One-line JSON object describing the mechanism ({"name":...,
  /// "epsilon":..., ...}); stamped into BENCH_*.json provenance.
  virtual std::string ParamsJson() const;

  const PrivacyParams& params() const { return params_; }

 protected:
  explicit Mechanism(const PrivacyParams& params) : params_(params) {}

  PrivacyParams params_;
};

/// Adapter over the continuous planar Laplace sampler. Bit-compatible with
/// the pre-interface code paths: Perturb(x, rng) == x + PlanarLaplace(
/// params.unit_epsilon()).Sample(rng) — same draws, same order — so
/// refactored call sites reproduce historical MatchResults exactly.
class PlanarLaplaceMechanism final : public Mechanism {
 public:
  /// Dies on invalid params; use MakeMechanism for checked construction.
  explicit PlanarLaplaceMechanism(const PrivacyParams& params);

  geo::Point Perturb(geo::Point x, stats::Rng& rng) const override;
  std::optional<double> DiskProbability(double center_distance_m,
                                        double disk_radius_m) const override;
  double ConfidenceRadius(double gamma) const override;
  std::string_view name() const override;

  const PlanarLaplace& noise() const { return laplace_; }

 private:
  PlanarLaplace laplace_;
};

/// Walker alias table: O(1) sampling from a discrete distribution with a
/// fixed two-draw cost (UniformInt for the column, UniformDouble for the
/// accept test). Deterministic construction (two-stack method over the
/// index order) so equal probability vectors build equal tables.
class AliasTable {
 public:
  AliasTable() = default;
  /// `probs` need not be normalized; requires a positive total.
  explicit AliasTable(const std::vector<double>& probs);

  uint32_t Sample(stats::Rng& rng) const;
  size_t size() const { return accept_.size(); }

 private:
  std::vector<double> accept_;  // acceptance threshold per column
  std::vector<uint32_t> alias_; // fallback outcome per column
};

/// Grid-discretized obfuscation matrix (Geo-MOEA style, arXiv 2201.11300).
///
/// The region is cut into grid_cells x grid_cells cells; row i of the
/// matrix is the perturbation distribution P(report cell j | true cell i),
/// sampled via a per-row alias table, then jittered uniformly inside the
/// landed cell. Perturb costs exactly 4 rng draws (alias column + accept +
/// 2 jitter coordinates). Rows can be supplied directly (optimized
/// offline) via FromRows, or built from the exponential Geo-I kernel
/// P(j|i) ∝ exp(-eps/(2 r) * d(center_i, center_j)) via Make.
class MatrixMechanism final : public Mechanism {
 public:
  /// Exponential-kernel rows (the discrete analogue of planar Laplace).
  static Result<std::unique_ptr<MatrixMechanism>> Make(
      const PrivacyParams& params, const geo::BoundingBox& region);

  /// Externally optimized rows: `rows` is grid_cells^2 vectors of
  /// grid_cells^2 unnormalized weights, row-major over cells
  /// (cell = cy * grid_cells + cx).
  static Result<std::unique_ptr<MatrixMechanism>> FromRows(
      const PrivacyParams& params, const geo::BoundingBox& region,
      std::vector<std::vector<double>> rows, std::string name);

  geo::Point Perturb(geo::Point x, stats::Rng& rng) const override;
  double ConfidenceRadius(double gamma) const override;
  std::string_view name() const override;
  std::string ParamsJson() const override;

  int grid_cells() const { return cells_; }
  const geo::BoundingBox& region() const { return region_; }
  /// Normalized row i of the matrix (for tests and offline analysis).
  const std::vector<double>& Row(size_t i) const { return rows_[i]; }
  /// Cell index of a (clamped) point; row-major, cy * grid_cells + cx.
  size_t CellOf(geo::Point x) const;
  geo::Point CellCenter(size_t cell) const;

 private:
  MatrixMechanism(const PrivacyParams& params, const geo::BoundingBox& region,
                  std::vector<std::vector<double>> rows, std::string name);

  geo::BoundingBox region_;
  int cells_ = 0;
  double cell_w_ = 0.0, cell_h_ = 0.0;
  std::vector<std::vector<double>> rows_;  // normalized
  std::vector<AliasTable> alias_;
  std::string name_;
};

/// Prior-weighted empirical mechanism (arXiv 2008.03475 flavor): the
/// exponential Geo-I kernel re-weighted by a location prior pi learned from
/// history, P(j|i) ∝ pi(j) * exp(-eps/(2 r) * d(center_i, center_j)).
/// Reported locations concentrate on cells where workers plausibly are,
/// which raises the server's U2U hit rate at equal epsilon.
///
/// The spec path (MakeMechanism) learns pi from a synthetic T-Drive-like
/// history: prior_samples points drawn from a seeded Beijing-style hotspot
/// mixture (the same family data::HotspotMixture generates trips from),
/// counted per cell with add-one smoothing. Being a pure function of the
/// spec, every site reconstructs the identical mechanism. Learn() accepts
/// an explicit history instead.
class PriorWeightedMechanism final : public Mechanism {
 public:
  /// Learns the prior from the spec's synthetic history stream.
  static Result<std::unique_ptr<PriorWeightedMechanism>> Make(
      const PrivacyParams& params, const geo::BoundingBox& region);

  /// Learns the prior from an explicit history of true locations.
  static Result<std::unique_ptr<PriorWeightedMechanism>> Learn(
      const PrivacyParams& params, const geo::BoundingBox& region,
      const geo::Point* history, size_t n);

  geo::Point Perturb(geo::Point x, stats::Rng& rng) const override;
  double ConfidenceRadius(double gamma) const override;
  std::string_view name() const override;
  std::string ParamsJson() const override;

  const MatrixMechanism& matrix() const { return *matrix_; }

 private:
  explicit PriorWeightedMechanism(std::unique_ptr<MatrixMechanism> matrix);

  std::unique_ptr<MatrixMechanism> matrix_;
};

/// True iff the kind has a closed-form DiskProbability — i.e. the
/// analytical reachability model applies. Grid kinds must use the
/// empirical (Probabilistic-Data) path.
bool HasClosedFormDiskProbability(MechanismKind kind);

/// Builds the mechanism selected by params.mechanism. Grid kinds
/// discretize spec.region when set, else `fallback_region` (the workload /
/// city region); an empty effective region is an error.
Result<std::unique_ptr<const Mechanism>> MakeMechanism(
    const PrivacyParams& params,
    const geo::BoundingBox& fallback_region = geo::BoundingBox{});

/// MakeMechanism that dies (SCGUARD_CHECK) on error, for call sites without
/// Status plumbing. Mirrors the GeoIndMechanism ctor/Create split.
std::unique_ptr<const Mechanism> MakeMechanismOrDie(
    const PrivacyParams& params,
    const geo::BoundingBox& fallback_region = geo::BoundingBox{});

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_MECHANISM_H_
