# Empty dependencies file for bench_redundant_k.
# This may be replaced when dependencies are built.
