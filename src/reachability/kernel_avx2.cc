// Explicit 4-lane AVX2 implementation of ClassifyCertainBand. This is the
// only translation unit compiled with -mavx2 (see CMakeLists.txt); the
// dispatcher in kernel.cc only calls in here after a runtime CPUID check,
// so the rest of the binary stays runnable on baseline x86-64.
//
// Bit-identity contract with ClassifyCertainBandScalar (DESIGN.md §11):
//  * d_sq is computed as explicit sub/mul/mul/add intrinsics. -mavx2 does
//    not enable FMA, so neither this TU nor the scalar one can contract
//    dx*dx + dy*dy — both round each operation to double, giving the same
//    d_sq bit pattern per worker.
//  * The lane masks replicate the scalar predicates exactly:
//    accept = d_sq <= accept_sq (LE_OQ), band = !accept && d_sq < reject_sq
//    (andnot + LT_OQ). Ordered-quiet compares return false on NaN, matching
//    the scalar comparisons.
//  * Surviving lane indices are left-packed in lane order, so output order
//    equals the scalar loop's input-order emission.

#include "reachability/kernel.h"

#if defined(SCGUARD_HAVE_AVX2)

#include <immintrin.h>

#include <array>
#include <cstdint>

namespace scguard::reachability {
namespace {

/// _mm_shuffle_epi8 controls that left-pack the selected 32-bit lanes of a
/// __m128i: entry m (a 4-bit lane mask) moves the set lanes to the front in
/// order and fills the rest with 0x80 (shuffle zero).
constexpr std::array<std::array<uint8_t, 16>, 16> MakePackTable() {
  std::array<std::array<uint8_t, 16>, 16> table{};
  for (int mask = 0; mask < 16; ++mask) {
    int out_lane = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask & (1 << lane)) != 0) {
        for (int b = 0; b < 4; ++b) {
          table[static_cast<size_t>(mask)][static_cast<size_t>(out_lane * 4 + b)] =
              static_cast<uint8_t>(lane * 4 + b);
        }
        ++out_lane;
      }
    }
    for (; out_lane < 4; ++out_lane) {
      for (int b = 0; b < 4; ++b) {
        table[static_cast<size_t>(mask)][static_cast<size_t>(out_lane * 4 + b)] =
            0x80;
      }
    }
  }
  return table;
}

alignas(64) constexpr std::array<std::array<uint8_t, 16>, 16> kPack =
    MakePackTable();

inline __m128i PackControl(int mask) {
  return _mm_load_si128(
      reinterpret_cast<const __m128i*>(kPack[static_cast<size_t>(mask)].data()));
}

/// Full-mask gather. The plain _mm256_i32gather_pd expands to an undefined
/// pass-through source in GCC's intrinsic header, which -Wmaybe-uninitialized
/// rejects under -Werror; an all-true masked gather with a zeroed source is
/// the same load with defined inputs.
inline __m256d GatherPd(const double* base, __m128i idx) {
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, idx,
                                  _mm256_castsi256_pd(_mm256_set1_epi64x(-1)),
                                  8);
}

}  // namespace

void ClassifyCertainBandAvx2(const WorkerFilterSoA& soa,
                             const uint32_t* indices, size_t count,
                             double task_x, double task_y,
                             std::vector<uint32_t>& accept,
                             std::vector<uint32_t>& band) {
  accept.resize(count);
  band.resize(count);
  const double* const x = soa.x.data();
  const double* const y = soa.y.data();
  const double* const accept_sq = soa.accept_below_sq.data();
  const double* const reject_sq = soa.reject_above_sq.data();
  uint32_t* const accept_out = accept.data();
  uint32_t* const band_out = band.data();
  size_t num_accept = 0;
  size_t num_band = 0;

  const __m256d tx = _mm256_set1_pd(task_x);
  const __m256d ty = _mm256_set1_pd(task_y);
  size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(indices + k));
    const __m256d wx = GatherPd(x, idx);
    const __m256d wy = GatherPd(y, idx);
    const __m256d lo = GatherPd(accept_sq, idx);
    const __m256d hi = GatherPd(reject_sq, idx);
    const __m256d dx = _mm256_sub_pd(wx, tx);
    const __m256d dy = _mm256_sub_pd(wy, ty);
    // Explicit mul/mul/add — never fused, matching the scalar rounding.
    const __m256d d_sq =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const __m256d is_accept = _mm256_cmp_pd(d_sq, lo, _CMP_LE_OQ);
    const __m256d is_band =
        _mm256_andnot_pd(is_accept, _mm256_cmp_pd(d_sq, hi, _CMP_LT_OQ));
    const int accept_mask = _mm256_movemask_pd(is_accept);
    const int band_mask = _mm256_movemask_pd(is_band);
    // Left-packed compress-store; the 16-byte store never overruns because
    // num_accept <= k and k + 4 <= count == capacity (same for band).
    _mm_storeu_si128(reinterpret_cast<__m128i*>(accept_out + num_accept),
                     _mm_shuffle_epi8(idx, PackControl(accept_mask)));
    num_accept += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(accept_mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(band_out + num_band),
                     _mm_shuffle_epi8(idx, PackControl(band_mask)));
    num_band += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(band_mask)));
  }
  // Scalar tail, identical to ClassifyCertainBandScalar's loop body. (This
  // TU has no FMA either, so the tail rounds the same way.)
  for (; k < count; ++k) {
    const uint32_t i = indices[k];
    const double dx = x[i] - task_x;
    const double dy = y[i] - task_y;
    const double d_sq = dx * dx + dy * dy;
    const bool in_accept = d_sq <= accept_sq[i];
    const bool in_band = (d_sq > accept_sq[i]) & (d_sq < reject_sq[i]);
    accept_out[num_accept] = i;
    num_accept += in_accept ? 1 : 0;
    band_out[num_band] = i;
    num_band += in_band ? 1 : 0;
  }
  accept.resize(num_accept);
  band.resize(num_band);
}

void ClassifyCertainBandRangeAvx2(const CellMajorMirror& m, size_t begin,
                                  size_t count, double task_x, double task_y,
                                  std::vector<uint32_t>& accept,
                                  std::vector<uint32_t>& band) {
  // The range twin of ClassifyCertainBandAvx2: the four vpgatherdpd turn
  // into contiguous loadu_pd streams over the mirror columns, and the id
  // vector is loaded (not synthesized from an index list). Same compares,
  // same left-pack, same no-FMA rounding, append semantics.
  const size_t accept_base = accept.size();
  const size_t band_base = band.size();
  accept.resize(accept_base + count);
  band.resize(band_base + count);
  const uint32_t* const id = m.id.data() + begin;
  const double* const x = m.x.data() + begin;
  const double* const y = m.y.data() + begin;
  const double* const accept_sq = m.accept_below_sq.data() + begin;
  const double* const reject_sq = m.reject_above_sq.data() + begin;
  uint32_t* const accept_out = accept.data() + accept_base;
  uint32_t* const band_out = band.data() + band_base;
  size_t num_accept = 0;
  size_t num_band = 0;

  const __m256d tx = _mm256_set1_pd(task_x);
  const __m256d ty = _mm256_set1_pd(task_y);
  size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(id + k));
    const __m256d wx = _mm256_loadu_pd(x + k);
    const __m256d wy = _mm256_loadu_pd(y + k);
    const __m256d lo = _mm256_loadu_pd(accept_sq + k);
    const __m256d hi = _mm256_loadu_pd(reject_sq + k);
    const __m256d dx = _mm256_sub_pd(wx, tx);
    const __m256d dy = _mm256_sub_pd(wy, ty);
    const __m256d d_sq =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const __m256d is_accept = _mm256_cmp_pd(d_sq, lo, _CMP_LE_OQ);
    const __m256d is_band =
        _mm256_andnot_pd(is_accept, _mm256_cmp_pd(d_sq, hi, _CMP_LT_OQ));
    const int accept_mask = _mm256_movemask_pd(is_accept);
    const int band_mask = _mm256_movemask_pd(is_band);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(accept_out + num_accept),
                     _mm_shuffle_epi8(ids, PackControl(accept_mask)));
    num_accept += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(accept_mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(band_out + num_band),
                     _mm_shuffle_epi8(ids, PackControl(band_mask)));
    num_band += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(band_mask)));
  }
  for (; k < count; ++k) {
    const double dx = x[k] - task_x;
    const double dy = y[k] - task_y;
    const double d_sq = dx * dx + dy * dy;
    const bool in_accept = d_sq <= accept_sq[k];
    const bool in_band = (d_sq > accept_sq[k]) & (d_sq < reject_sq[k]);
    accept_out[num_accept] = id[k];
    num_accept += in_accept ? 1 : 0;
    band_out[num_band] = id[k];
    num_band += in_band ? 1 : 0;
  }
  accept.resize(accept_base + num_accept);
  band.resize(band_base + num_band);
}

size_t ClassifyCertainBandRangeRectAvx2(
    const CellMajorMirror& m, size_t begin, size_t count, double task_x,
    double task_y, double q_min_x, double q_min_y, double q_max_x,
    double q_max_y, std::vector<uint32_t>& accept,
    std::vector<uint32_t>& band) {
  // Boundary-cell variant: the pruner's per-member rectangle admission
  // (exactly GridIndex::Query's member test, in vector form) masks the
  // trichotomy, so a rectangle-rejected row ends up in neither output and
  // is not counted admitted. GE/LE ordered-quiet compares match the scalar
  // <=s on any input.
  const size_t accept_base = accept.size();
  const size_t band_base = band.size();
  accept.resize(accept_base + count);
  band.resize(band_base + count);
  const uint32_t* const id = m.id.data() + begin;
  const double* const x = m.x.data() + begin;
  const double* const y = m.y.data() + begin;
  const double* const er = m.expanded_r.data() + begin;
  const double* const accept_sq = m.accept_below_sq.data() + begin;
  const double* const reject_sq = m.reject_above_sq.data() + begin;
  uint32_t* const accept_out = accept.data() + accept_base;
  uint32_t* const band_out = band.data() + band_base;
  size_t num_accept = 0;
  size_t num_band = 0;
  size_t admitted = 0;

  const __m256d tx = _mm256_set1_pd(task_x);
  const __m256d ty = _mm256_set1_pd(task_y);
  const __m256d qminx = _mm256_set1_pd(q_min_x);
  const __m256d qminy = _mm256_set1_pd(q_min_y);
  const __m256d qmaxx = _mm256_set1_pd(q_max_x);
  const __m256d qmaxy = _mm256_set1_pd(q_max_y);
  size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(id + k));
    const __m256d wx = _mm256_loadu_pd(x + k);
    const __m256d wy = _mm256_loadu_pd(y + k);
    const __m256d wr = _mm256_loadu_pd(er + k);
    const __m256d lo = _mm256_loadu_pd(accept_sq + k);
    const __m256d hi = _mm256_loadu_pd(reject_sq + k);
    const __m256d admit = _mm256_and_pd(
        _mm256_and_pd(
            _mm256_cmp_pd(_mm256_sub_pd(wx, wr), qmaxx, _CMP_LE_OQ),
            _mm256_cmp_pd(qminx, _mm256_add_pd(wx, wr), _CMP_LE_OQ)),
        _mm256_and_pd(
            _mm256_cmp_pd(_mm256_sub_pd(wy, wr), qmaxy, _CMP_LE_OQ),
            _mm256_cmp_pd(qminy, _mm256_add_pd(wy, wr), _CMP_LE_OQ)));
    const __m256d dx = _mm256_sub_pd(wx, tx);
    const __m256d dy = _mm256_sub_pd(wy, ty);
    const __m256d d_sq =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const __m256d le = _mm256_cmp_pd(d_sq, lo, _CMP_LE_OQ);
    const __m256d is_accept = _mm256_and_pd(admit, le);
    const __m256d is_band = _mm256_and_pd(
        admit, _mm256_andnot_pd(le, _mm256_cmp_pd(d_sq, hi, _CMP_LT_OQ)));
    const int accept_mask = _mm256_movemask_pd(is_accept);
    const int band_mask = _mm256_movemask_pd(is_band);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(accept_out + num_accept),
                     _mm_shuffle_epi8(ids, PackControl(accept_mask)));
    num_accept += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(accept_mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(band_out + num_band),
                     _mm_shuffle_epi8(ids, PackControl(band_mask)));
    num_band += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(band_mask)));
    admitted += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(admit))));
  }
  for (; k < count; ++k) {
    const bool admit = (x[k] - er[k] <= q_max_x) & (q_min_x <= x[k] + er[k]) &
                       (y[k] - er[k] <= q_max_y) & (q_min_y <= y[k] + er[k]);
    const double dx = x[k] - task_x;
    const double dy = y[k] - task_y;
    const double d_sq = dx * dx + dy * dy;
    const bool in_accept = admit & (d_sq <= accept_sq[k]);
    const bool in_band =
        admit & (d_sq > accept_sq[k]) & (d_sq < reject_sq[k]);
    accept_out[num_accept] = id[k];
    num_accept += in_accept ? 1 : 0;
    band_out[num_band] = id[k];
    num_band += in_band ? 1 : 0;
    admitted += admit ? 1 : 0;
  }
  accept.resize(accept_base + num_accept);
  band.resize(band_base + num_band);
  return admitted;
}

}  // namespace scguard::reachability

#endif  // SCGUARD_HAVE_AVX2
