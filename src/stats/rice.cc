#include "stats/rice.h"

#include <cmath>

#include "common/check.h"
#include "stats/bessel.h"
#include "stats/marcum_q.h"

namespace scguard::stats {

RiceDistribution::RiceDistribution(double nu, double sigma)
    : nu_(nu), sigma_(sigma) {
  SCGUARD_CHECK(nu >= 0.0 && sigma > 0.0);
}

double RiceDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  const double s2 = sigma_ * sigma_;
  const double z = x * nu_ / s2;
  // x/s2 * exp(-(x^2+nu^2)/(2 s2)) * I0(z)
  //   = x/s2 * exp(-(x-nu)^2/(2 s2)) * [e^-z I0(z)], avoiding overflow of
  // both the exponential and the Bessel factor.
  const double dx = x - nu_;
  return x / s2 * std::exp(-dx * dx / (2.0 * s2)) * BesselI0Scaled(z);
}

double RiceDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - MarcumQ1(nu_ / sigma_, x / sigma_);
}

double RiceDistribution::Mean() const {
  // Laguerre L_{1/2}(-t) = e^{-t/2} [(1 + t) I0(t/2) + t I1(t/2)] with
  // t = nu^2 / (2 sigma^2); use scaled Bessels so the e^{-t/2} cancels.
  const double t = nu_ * nu_ / (2.0 * sigma_ * sigma_);
  const double half = t / 2.0;
  const double laguerre =
      (1.0 + t) * BesselI0Scaled(half) + t * BesselI1Scaled(half);
  return sigma_ * std::sqrt(M_PI / 2.0) * laguerre;
}

double RiceDistribution::Variance() const {
  const double mean = Mean();
  return 2.0 * sigma_ * sigma_ + nu_ * nu_ - mean * mean;
}

}  // namespace scguard::stats
