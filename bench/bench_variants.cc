// Quantifies the two U2E designs the paper rejects by argument alone
// (Sec. III-A): the parallel broadcast (workers self-reveal their exact
// locations to the requester) and the server-ranked variant (candidates'
// responses hand the server correlated signals, forcing location-set
// budgeting that degrades the ranking). Sequential SCGuard is the
// reference.

#include "bench/bench_common.h"
#include "core/protocol.h"
#include "core/variants.h"
#include "reachability/analytical_model.h"

namespace scguard::bench {
namespace {

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(QuickConfig()));

  for (double eps : {0.4, 0.7, 1.0}) {
    const privacy::PrivacyParams p{eps, sim::kDefaultRadius};
    sim::TablePrinter table(
        StrCat("U2E design variants at eps=", eps, ", r=", sim::kDefaultRadius),
        {"variant", "utility", "task-loc disclosures", "worker-loc disclosures",
         "server-learned responses"});

    const reachability::AnalyticalModel model(p);
    for (auto variant :
         {core::U2eVariant::kSequential, core::U2eVariant::kParallelBroadcast,
          core::U2eVariant::kServerRanked}) {
      double utility = 0, task_disc = 0, worker_disc = 0, responses = 0;
      const int seeds = runner.config().num_seeds;
      for (int seed = 0; seed < seeds; ++seed) {
        const assign::Workload workload = OrDie(runner.MakeWorkload(seed, p, p));
        stats::Rng rng(1000 + static_cast<uint64_t>(seed));
        core::TaskingServer server(&model, sim::kDefaultAlpha);
        std::vector<core::WorkerDevice> devices;
        for (const auto& w : workload.workers) {
          devices.emplace_back(w.id, w.location, w.reach_radius_m, p);
          server.RegisterWorker({w.id, w.noisy_location, w.reach_radius_m});
        }
        for (const auto& t : workload.tasks) {
          core::RequesterDevice requester(t.id, t.location, p);
          const core::TaskRequest request{t.id, t.noisy_location};
          const auto candidates = server.FindCandidates(request);
          const core::VariantOutcome outcome =
              core::RunU2eVariant(variant, requester, request, candidates,
                                  devices, model, sim::kDefaultBeta, rng);
          if (outcome.assigned_worker.has_value()) {
            utility += 1;
            server.MarkAssigned(*outcome.assigned_worker);
          }
          task_disc += static_cast<double>(outcome.task_location_disclosures);
          worker_disc += static_cast<double>(outcome.worker_location_disclosures);
          responses += static_cast<double>(outcome.server_learned_responses);
        }
      }
      const double n = static_cast<double>(seeds);
      table.AddRow(std::string(core::U2eVariantName(variant)),
                   {utility / n, task_disc / n, worker_disc / n, responses / n},
                   1);
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
