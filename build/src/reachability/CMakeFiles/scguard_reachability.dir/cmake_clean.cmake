file(REMOVE_RECURSE
  "CMakeFiles/scguard_reachability.dir/analytical_model.cc.o"
  "CMakeFiles/scguard_reachability.dir/analytical_model.cc.o.d"
  "CMakeFiles/scguard_reachability.dir/binary_model.cc.o"
  "CMakeFiles/scguard_reachability.dir/binary_model.cc.o.d"
  "CMakeFiles/scguard_reachability.dir/empirical_model.cc.o"
  "CMakeFiles/scguard_reachability.dir/empirical_model.cc.o.d"
  "CMakeFiles/scguard_reachability.dir/empirical_table.cc.o"
  "CMakeFiles/scguard_reachability.dir/empirical_table.cc.o.d"
  "libscguard_reachability.a"
  "libscguard_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
