// What batching buys under Geo-I noise: the batch matcher (the assignment
// mode of the encryption-based related work, [Liu et al., EDBT'17]) solves
// a min-cost matching per buffer of b tasks instead of matching each task
// on arrival. Larger b coordinates better but delays every task by up to
// one buffer — the latency axis the paper's online setting refuses to pay.

#include "assign/batch.h"
#include "bench/bench_common.h"
#include "reachability/analytical_model.h"

namespace scguard::bench {
namespace {

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));

  for (double eps : {0.4, 0.7}) {
    const privacy::PrivacyParams p{eps, sim::kDefaultRadius};
    const reachability::AnalyticalModel model(p);
    sim::TablePrinter table(
        StrCat("Batch-size sweep at eps=", eps, ", r=", sim::kDefaultRadius),
        {"matcher", "utility", "travel (m)", "false hits",
         "max task delay (tasks)"});

    // Online references.
    {
      assign::MatcherHandle online = assign::MakeProbabilisticModel(MakeParams(p));
      const auto agg = OrDie(runner.Run(online, p, p));
      table.AddRow("Probabilistic-Model (online)",
                   {agg.assigned_tasks, agg.travel_m, agg.false_hits, 0.0}, 1);
    }
    for (int b : {1, 10, 50, 250, 500}) {
      assign::MatcherHandle handle;
      handle.matcher = std::make_unique<assign::BatchMatcher>(&model,
                                                              sim::kDefaultAlpha, b);
      const auto agg = OrDie(runner.Run(handle, p, p));
      table.AddRow(StrCat("Batch-", b),
                   {agg.assigned_tasks, agg.travel_m, agg.false_hits,
                    static_cast<double>(b - 1)},
                   1);
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
