#ifndef SCGUARD_DATA_TRIP_MODEL_H_
#define SCGUARD_DATA_TRIP_MODEL_H_

#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"
#include "stats/rng.h"

namespace scguard::data {

/// One taxi trip: the pick-up is a passenger request (an SC task in the
/// paper's mapping) and the drop-off leaves the taxi (an SC worker) at a
/// known location.
struct Trip {
  int64_t taxi_id = 0;
  double pickup_time_s = 0;  ///< Seconds since start of day.
  geo::Point pickup;
  double dropoff_time_s = 0;
  geo::Point dropoff;
};

/// A spatial mixture of Gaussian hotspots plus a uniform background over a
/// region: the demand surface of an urban taxi system. Stands in for the
/// empirical spatial clustering of T-Drive pick-ups/drop-offs.
class HotspotMixture {
 public:
  struct Hotspot {
    geo::Point center;
    double sigma_m = 1000.0;  ///< Spatial spread of the hotspot.
    double weight = 1.0;      ///< Relative demand mass.
  };

  /// `background_weight` is the relative mass of the uniform component;
  /// requires a non-empty region and at least one hotspot or background
  /// mass.
  HotspotMixture(const geo::BoundingBox& region, std::vector<Hotspot> hotspots,
                 double background_weight);

  /// Generates a canonical Beijing-like demand surface: `num_hotspots`
  /// centers drawn within the central 60% of the region with sigmas in
  /// [400 m, 2 km] and Zipf-ish weights, plus 20% uniform background.
  static HotspotMixture MakeBeijingLike(const geo::BoundingBox& region,
                                        int num_hotspots, stats::Rng& rng);

  /// Draws one location; samples falling outside the region are rejected
  /// and redrawn (hotspots near the border thus truncate).
  geo::Point Sample(stats::Rng& rng) const;

  const std::vector<Hotspot>& hotspots() const { return hotspots_; }
  const geo::BoundingBox& region() const { return region_; }

 private:
  geo::BoundingBox region_;
  std::vector<Hotspot> hotspots_;
  double background_weight_;
  double total_weight_;
};

}  // namespace scguard::data

#endif  // SCGUARD_DATA_TRIP_MODEL_H_
