#ifndef SCGUARD_STATS_WELFORD_H_
#define SCGUARD_STATS_WELFORD_H_

#include <cmath>
#include <cstdint>

namespace scguard::stats {

/// Numerically stable streaming mean/variance (Welford's algorithm).
/// Used wherever the library accumulates statistics over many samples
/// (empirical-model diagnostics, experiment aggregation, tests).
class OnlineMeanVar {
 public:
  void Add(double value) {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (value < min_ || count_ == 1) min_ = value;
    if (value > max_ || count_ == 1) max_ = value;
  }

  /// Merges another accumulator (Chan's parallel formula).
  void Merge(const OnlineMeanVar& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::fmin(min_, other.min_);
    max_ = std::fmax(max_, other.max_);
  }

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const {
    return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_WELFORD_H_
