// The cell-major scoring mirror (DESIGN.md section 13): bit-identity of the
// mirror Collect path against the gather path across models, pruner
// backends, SIMD dispatch, and thread pools; incremental slice-sync under
// index churn; and the range classification kernels against their scalar
// references.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assign/scguard_engine.h"
#include "assign/stages/candidate_stage.h"
#include "assign/stages/cell_mirror.h"
#include "data/workload.h"
#include "geo/bbox.h"
#include "index/grid_index.h"
#include "index/pruning.h"
#include "reachability/analytical_model.h"
#include "reachability/binary_model.h"
#include "reachability/empirical_model.h"
#include "reachability/kernel.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"

namespace scguard::assign {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

Workload NoisyWorkload(int n, uint64_t seed) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = n;
  config.num_tasks = n;
  stats::Rng rng(seed);
  Workload w = data::MakeUniformWorkload(region, config, rng);
  data::PerturbWorkload(kDefault, kDefault, rng, w);
  return w;
}

/// Full decision-level equality: assignment sequence, every decision-derived
/// metric, and (unlike the parallel test) the mirror traffic counters —
/// which must also be pool/SIMD invariant within one mirror setting.
void ExpectBitIdentical(const MatchResult& a, const MatchResult& b,
                        bool compare_traffic, const std::string& label) {
  ASSERT_EQ(a.assignments.size(), b.assignments.size()) << label;
  for (size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].task_id, b.assignments[i].task_id) << label;
    EXPECT_EQ(a.assignments[i].worker_id, b.assignments[i].worker_id) << label;
    EXPECT_EQ(a.assignments[i].travel_m, b.assignments[i].travel_m) << label;
  }
  EXPECT_EQ(a.metrics.assigned_tasks, b.metrics.assigned_tasks) << label;
  EXPECT_EQ(a.metrics.candidates_sum, b.metrics.candidates_sum) << label;
  EXPECT_EQ(a.metrics.false_hits, b.metrics.false_hits) << label;
  EXPECT_EQ(a.metrics.false_dismissals, b.metrics.false_dismissals) << label;
  EXPECT_EQ(a.metrics.requester_to_worker_msgs,
            b.metrics.requester_to_worker_msgs)
      << label;
  EXPECT_EQ(a.metrics.precision_sum, b.metrics.precision_sum) << label;
  EXPECT_EQ(a.metrics.recall_sum, b.metrics.recall_sum) << label;
  EXPECT_EQ(a.metrics.u2u_scanned, b.metrics.u2u_scanned) << label;
  EXPECT_EQ(a.metrics.u2u_scanned_first_task, b.metrics.u2u_scanned_first_task)
      << label;
  EXPECT_EQ(a.metrics.u2u_scanned_last_task, b.metrics.u2u_scanned_last_task)
      << label;
  if (compare_traffic) {
    EXPECT_EQ(a.metrics.u2u_gather_bytes, b.metrics.u2u_gather_bytes) << label;
    EXPECT_EQ(a.metrics.cells_emitted_direct, b.metrics.cells_emitted_direct)
        << label;
  }
}

// The ISSUE 8 acceptance sweep: for three models and every pruner backend,
// the mirror path must reproduce the gather path's MatchResult and caller
// RNG stream bit for bit under forced-scalar and auto SIMD dispatch and
// pools {serial, 1, 8}; and within one mirror setting the traffic counters
// themselves must be pool/SIMD invariant.
TEST(MirrorEngineSweepTest, BitIdenticalAcrossModelPrunerSimdPoolMirror) {
  const reachability::AnalyticalModel analytical(kDefault);
  const reachability::BinaryModel binary;
  reachability::EmpiricalModelConfig econfig;
  econfig.region = geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  econfig.num_samples = 20000;
  stats::Rng build_rng(20260809);
  const auto empirical =
      reachability::EmpiricalModel::Build(econfig, kDefault, build_rng);

  const Workload workload = NoisyWorkload(160, 20260808);

  std::vector<std::unique_ptr<runtime::ThreadPool>> pools;
  pools.push_back(nullptr);  // Serial.
  for (const int threads : {1, 8}) {
    pools.push_back(std::make_unique<runtime::ThreadPool>(threads));
  }

  struct ModelCase {
    const char* name;
    const reachability::ReachabilityModel* model;
  };
  const ModelCase models[] = {
      {"analytical", &analytical},
      {"binary", &binary},
      {"empirical", &*empirical},
  };
  struct PrunerCase {
    const char* name;
    std::optional<double> gamma;
    index::PrunerBackend backend;
  };
  const PrunerCase pruners[] = {
      {"off", std::nullopt, index::PrunerBackend::kGrid},
      {"grid", 0.9, index::PrunerBackend::kGrid},
      {"rtree", 0.9, index::PrunerBackend::kRTree},
  };

  for (const ModelCase& mc : models) {
    for (const PrunerCase& pc : pruners) {
      EnginePolicy base;
      base.u2u_model = mc.model;
      base.u2e_model = mc.model;
      base.alpha = 0.1;
      base.beta = 0.25;
      base.rank = RankStrategy::kProbability;
      base.worker_params = kDefault;
      base.task_params = kDefault;
      base.pruning_gamma = pc.gamma;
      base.pruning_backend = pc.backend;

      // Per-mirror-setting baselines: serial, forced-scalar.
      MatchResult expected[2];
      double expected_next_draw[2];
      for (const bool mirror : {false, true}) {
        EnginePolicy policy = base;
        policy.runtime.cell_mirror = mirror;
        reachability::SetClassifySimd(reachability::ClassifySimd::kScalar);
        ScGuardEngine engine(policy);
        stats::Rng rng(7);
        expected[mirror ? 1 : 0] = engine.Run(workload, rng);
        expected_next_draw[mirror ? 1 : 0] = rng.UniformDouble();
        reachability::ResetClassifySimd();
      }
      ASSERT_GT(expected[0].metrics.assigned_tasks, 0)
          << mc.name << "/" << pc.name;
      // Mirror on vs off: identical decisions; only the traffic model of
      // the counters differs.
      ExpectBitIdentical(expected[0], expected[1], /*compare_traffic=*/false,
                         std::string(mc.name) + "/" + pc.name +
                             " mirror on-vs-off baseline");
      EXPECT_EQ(expected_next_draw[0], expected_next_draw[1]);

      for (const bool mirror : {false, true}) {
        for (const bool force_scalar : {true, false}) {
          for (const auto& pool : pools) {
            EnginePolicy policy = base;
            policy.runtime.cell_mirror = mirror;
            policy.runtime.pool = pool.get();
            policy.runtime.shard_size = 64;  // Multiple chunks per task.
            if (force_scalar) {
              reachability::SetClassifySimd(
                  reachability::ClassifySimd::kScalar);
            }
            ScGuardEngine engine(policy);
            stats::Rng rng(7);
            const MatchResult result = engine.Run(workload, rng);
            reachability::ResetClassifySimd();
            const std::string label =
                std::string(mc.name) + "/" + pc.name +
                " mirror=" + (mirror ? "on" : "off") +
                " simd=" + (force_scalar ? "scalar" : "auto") +
                " threads=" + std::to_string(pool ? pool->num_threads() : 0);
            ExpectBitIdentical(expected[mirror ? 1 : 0], result,
                               /*compare_traffic=*/true, label);
            EXPECT_EQ(expected_next_draw[mirror ? 1 : 0], rng.UniformDouble())
                << label;
          }
        }
      }
    }
  }
}

// A dense grid-pruned run must actually exercise the certificate-direct
// path (cells emitted with zero per-worker loads), and the mirror's traffic
// must come in under the gather model's for the same scanned workers.
TEST(MirrorEngineSweepTest, MirrorEngagesAndReducesTraffic) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(2000, 20260810);

  EnginePolicy policy;
  policy.u2u_model = &model;
  policy.u2e_model = &model;
  policy.alpha = 0.1;
  policy.beta = 0.25;
  policy.worker_params = kDefault;
  policy.task_params = kDefault;
  policy.compute_accuracy_metrics = false;
  policy.pruning_gamma = 0.9;
  policy.pruning_backend = index::PrunerBackend::kGrid;

  EnginePolicy off = policy;
  off.runtime.cell_mirror = false;
  ScGuardEngine engine_on(policy);
  ScGuardEngine engine_off(off);
  stats::Rng rng_on(3);
  stats::Rng rng_off(3);
  const MatchResult r_on = engine_on.Run(workload, rng_on);
  const MatchResult r_off = engine_off.Run(workload, rng_off);
  ExpectBitIdentical(r_on, r_off, /*compare_traffic=*/false, "dense grid");

  EXPECT_GT(r_on.metrics.cells_emitted_direct, 0);
  EXPECT_EQ(r_off.metrics.cells_emitted_direct, 0);
  // Gather model: 4 scattered 64 B lines per scanned worker. The mirror
  // streams at most 44 B per scanned worker plus id runs, so it must come
  // in strictly below.
  ASSERT_GT(r_off.metrics.u2u_gather_bytes, 0);
  EXPECT_LT(r_on.metrics.u2u_gather_bytes, r_off.metrics.u2u_gather_bytes);
}

// ---- Incremental slice sync under churn ------------------------------

/// Reference recomputation of one cell's aggregate straight off the mirror
/// rows (plain fmin/fmax), the invariant the incremental updates maintain.
CellScoreMirror::CellAgg ReferenceAgg(const reachability::CellMajorMirror& m,
                                      size_t begin, uint32_t count) {
  CellScoreMirror::CellAgg agg;  // Empty sentinel: max < min.
  if (count == 0) return agg;
  agg.min_x = agg.max_x = m.x[begin];
  agg.min_y = agg.max_y = m.y[begin];
  agg.min_accept_sq = m.accept_below_sq[begin];
  agg.max_reject_sq = m.reject_above_sq[begin];
  for (size_t k = begin + 1; k < begin + count; ++k) {
    agg.min_x = std::fmin(agg.min_x, m.x[k]);
    agg.max_x = std::fmax(agg.max_x, m.x[k]);
    agg.min_y = std::fmin(agg.min_y, m.y[k]);
    agg.max_y = std::fmax(agg.max_y, m.y[k]);
    agg.min_accept_sq = std::fmin(agg.min_accept_sq, m.accept_below_sq[k]);
    agg.max_reject_sq = std::fmax(agg.max_reject_sq, m.reject_above_sq[k]);
  }
  return agg;
}

/// Asserts the mirror shadows the grid position for position: every live
/// slice row equals the index's member arrays plus the soa's bands for that
/// id, and every cell aggregate equals its reference recomputation.
void ExpectMirrorInSync(const index::GridIndex& grid,
                        const CellScoreMirror& mirror,
                        const reachability::WorkerFilterSoA& soa,
                        const std::string& label) {
  const reachability::CellMajorMirror& rows = mirror.rows();
  ASSERT_GE(rows.size(), grid.member_rows()) << label;
  for (size_t slot = 0; slot < grid.num_cell_slots(); ++slot) {
    const size_t begin = grid.cell_begin(slot);
    const uint32_t count = grid.cell_count(slot);
    for (size_t pos = begin; pos < begin + count; ++pos) {
      const auto id = static_cast<uint32_t>(grid.member_id(pos));
      ASSERT_EQ(rows.id[pos], id) << label << " slot=" << slot;
      EXPECT_EQ(rows.x[pos], grid.member_x(pos)) << label;
      EXPECT_EQ(rows.y[pos], grid.member_y(pos)) << label;
      EXPECT_EQ(rows.expanded_r[pos], grid.member_r(pos)) << label;
      EXPECT_EQ(rows.accept_below_sq[pos], soa.accept_below_sq[id]) << label;
      EXPECT_EQ(rows.reject_above_sq[pos], soa.reject_above_sq[id]) << label;
    }
    const CellScoreMirror::CellAgg expected = ReferenceAgg(rows, begin, count);
    const CellScoreMirror::CellAgg& got = mirror.CellAggForTest(slot);
    if (count == 0) {
      EXPECT_LT(got.max_x, got.min_x) << label << " slot=" << slot;
      continue;
    }
    EXPECT_EQ(got.min_x, expected.min_x) << label << " slot=" << slot;
    EXPECT_EQ(got.max_x, expected.max_x) << label << " slot=" << slot;
    EXPECT_EQ(got.min_y, expected.min_y) << label << " slot=" << slot;
    EXPECT_EQ(got.max_y, expected.max_y) << label << " slot=" << slot;
    EXPECT_EQ(got.min_accept_sq, expected.min_accept_sq) << label;
    EXPECT_EQ(got.max_reject_sq, expected.max_reject_sq) << label;
  }
}

TEST(CellScoreMirrorChurnTest, RemoveReAddAndRebuildKeepMirrorInSync) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {10000, 10000});
  stats::Rng rng(17);

  const size_t n = 200;
  reachability::WorkerFilterSoA soa;
  soa.Resize(n);
  soa.accept_below_sq.resize(n);
  soa.reject_above_sq.resize(n);
  std::vector<double> radii(n);
  for (size_t i = 0; i < n; ++i) {
    soa.x[i] = rng.UniformDouble(0.0, 10000.0);
    soa.y[i] = rng.UniformDouble(0.0, 10000.0);
    soa.reach_radius_m[i] = rng.UniformDouble(500.0, 2000.0);
    radii[i] = soa.reach_radius_m[i] + 300.0;  // Expanded rectangle radius.
    const double accept = rng.UniformDouble(0.0, 5000.0);
    soa.accept_below_sq[i] = accept * accept;
    const double reject = accept + rng.UniformDouble(0.0, 3000.0);
    soa.reject_above_sq[i] = reject * reject;
  }

  index::GridIndex grid(region, 8);
  for (size_t i = 0; i < n; ++i) {
    grid.Insert({soa.x[i], soa.y[i]}, radii[i], static_cast<int64_t>(i));
  }
  CellScoreMirror mirror;
  mirror.Attach(&grid, &soa);
  ExpectMirrorInSync(grid, mirror, soa, "after attach");

  // Interleaved removals (MarkMatched) and re-adds, checking sync at every
  // step; the erase path shifts slice tails down, the insert path shifts
  // them up (or triggers a rebuild when a slice fills).
  std::vector<uint32_t> removed;
  for (int step = 0; step < 120; ++step) {
    const bool remove = removed.size() < 60 &&
                        (removed.empty() || rng.UniformDouble() < 0.7);
    if (remove) {
      const auto victim =
          static_cast<uint32_t>(rng.UniformDouble() * static_cast<double>(n));
      if (grid.Remove(victim) > 0) removed.push_back(victim);
    } else {
      const uint32_t back = removed.back();
      removed.pop_back();
      grid.Insert({soa.x[back], soa.y[back]}, radii[back],
                  static_cast<int64_t>(back));
    }
    ExpectMirrorInSync(grid, mirror, soa,
                       "churn step " + std::to_string(step));
  }

  // Location churn (UpdateWorkerLocation): remove + re-insert elsewhere.
  for (int step = 0; step < 20; ++step) {
    const auto id =
        static_cast<uint32_t>(rng.UniformDouble() * static_cast<double>(n));
    grid.Remove(id);
    soa.x[id] = rng.UniformDouble(0.0, 10000.0);
    soa.y[id] = rng.UniformDouble(0.0, 10000.0);
    grid.Insert({soa.x[id], soa.y[id]}, radii[id], static_cast<int64_t>(id));
    ExpectMirrorInSync(grid, mirror, soa,
                       "relocate step " + std::to_string(step));
  }

  // Forced rebuild: pile inserts into one cell until its slice headroom
  // runs out, which re-lays the whole member array (OnRebuild -> resync).
  const size_t rows_before = grid.member_rows();
  for (size_t i = n; i < n + 64; ++i) {
    soa.Resize(i + 1);
    soa.accept_below_sq.resize(i + 1, 1.0);
    soa.reject_above_sq.resize(i + 1, 2.0);
    soa.x[i] = 1234.5;
    soa.y[i] = 1234.5;
    soa.reach_radius_m[i] = 600.0;
    soa.accept_below_sq[i] = 1.0e6;
    soa.reject_above_sq[i] = 4.0e6;
    grid.Insert({soa.x[i], soa.y[i]}, 900.0, static_cast<int64_t>(i));
  }
  EXPECT_GT(grid.member_rows(), rows_before);  // At least one rebuild.
  ExpectMirrorInSync(grid, mirror, soa, "after forced rebuild");

  // Certificates after all that churn: a whole-cell verdict must agree
  // with the per-member trichotomy it replaces.
  for (int t = 0; t < 32; ++t) {
    const double tx = rng.UniformDouble(0.0, 10000.0);
    const double ty = rng.UniformDouble(0.0, 10000.0);
    for (size_t slot = 0; slot < grid.num_cell_slots(); ++slot) {
      const uint32_t count = grid.cell_count(slot);
      if (count == 0) continue;
      const auto cert = mirror.Certify(slot, tx, ty);
      if (cert == CellScoreMirror::CellAlpha::kMixed) continue;
      const size_t begin = grid.cell_begin(slot);
      for (size_t pos = begin; pos < begin + count; ++pos) {
        const double dx = mirror.rows().x[pos] - tx;
        const double dy = mirror.rows().y[pos] - ty;
        const double d_sq = dx * dx + dy * dy;
        if (cert == CellScoreMirror::CellAlpha::kAllAccept) {
          EXPECT_LE(d_sq, mirror.rows().accept_below_sq[pos])
              << "slot=" << slot << " pos=" << pos;
        } else {
          EXPECT_GE(d_sq, mirror.rows().reject_above_sq[pos])
              << "slot=" << slot << " pos=" << pos;
        }
      }
    }
  }

  mirror.ForgetGrid();
}

// Stage-level churn: a mirror-on and a mirror-off stage driven through the
// same AddWorker / Collect / MarkMatched / UpdateWorkerLocation sequence
// must emit identical candidate lists and scan accounting throughout.
TEST(MirrorStageChurnTest, MirrorOnOffAgreeThroughChurn) {
  const reachability::AnalyticalModel model(kDefault);
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});

  U2uCandidateStage::Config config;
  config.model = &model;
  config.alpha = 0.1;
  config.pruning = U2uCandidateStage::Pruning{
      0.9, index::PrunerBackend::kGrid, kDefault, kDefault, region};
  U2uCandidateStage::Config config_off = config;
  config_off.runtime.cell_mirror = false;

  U2uCandidateStage on(config);
  U2uCandidateStage off(config_off);

  stats::Rng rng(23);
  const size_t n = 500;
  std::vector<geo::Point> locs(n);
  for (size_t i = 0; i < n; ++i) {
    locs[i] = {rng.UniformDouble(0.0, 20000.0),
               rng.UniformDouble(0.0, 20000.0)};
    const double r = rng.UniformDouble(800.0, 2500.0);
    on.AddWorker(locs[i], r);
    off.AddWorker(locs[i], r);
  }

  for (int step = 0; step < 60; ++step) {
    const geo::Point task{rng.UniformDouble(0.0, 20000.0),
                          rng.UniformDouble(0.0, 20000.0)};
    const std::vector<uint32_t> got_on = on.Collect(task);
    const std::vector<uint32_t> got_off = off.Collect(task);
    const std::string label = "step " + std::to_string(step);
    EXPECT_EQ(got_on, got_off) << label;
    EXPECT_EQ(on.stats().scanned_last + on.stats().pruned_last,
              off.stats().scanned_last + off.stats().pruned_last)
        << label;
    EXPECT_EQ(on.stats().scanned_last, off.stats().scanned_last) << label;

    if (!got_on.empty()) {
      // Match the best candidate, as the engine would.
      on.MarkMatched(got_on.front());
      off.MarkMatched(got_on.front());
    }
    if (step % 7 == 3) {
      const auto mover =
          static_cast<uint32_t>(rng.UniformDouble() * static_cast<double>(n));
      const geo::Point moved{rng.UniformDouble(0.0, 20000.0),
                             rng.UniformDouble(0.0, 20000.0)};
      on.UpdateWorkerLocation(mover, moved);
      off.UpdateWorkerLocation(mover, moved);
    }
    if (step == 40) {
      on.ResetAvailability();
      off.ResetAvailability();
    }
  }
  EXPECT_EQ(on.band_evals(), off.band_evals());
  EXPECT_GT(on.stats().cells_emitted_direct + on.stats().gather_bytes, 0);
}

TEST(MirrorStageChurnTest, IncrementalRelocateMatchesFreshStage) {
  // Service-style churn — same-cell jitters, cross-cell jumps, matched
  // workers reactivated via MarkAvailable — applied incrementally must
  // leave the stage answering exactly like one built fresh over the final
  // worker state. This pins the whole Relocate chain: GridIndex in-place
  // move, mirror OnSliceUpdate row refresh, pruner record update, and
  // Restore's re-insert at the *new* location.
  const reachability::AnalyticalModel model(kDefault);
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  U2uCandidateStage::Config config;
  config.model = &model;
  config.alpha = 0.1;
  config.pruning = U2uCandidateStage::Pruning{
      0.9, index::PrunerBackend::kGrid, kDefault, kDefault, region};

  stats::Rng rng(29);
  const size_t n = 400;
  std::vector<geo::Point> locs(n);
  std::vector<double> radii(n);
  std::vector<char> matched(n, 0);
  U2uCandidateStage live(config);
  for (size_t i = 0; i < n; ++i) {
    locs[i] = {rng.UniformDouble(0.0, 20000.0),
               rng.UniformDouble(0.0, 20000.0)};
    radii[i] = rng.UniformDouble(800.0, 2500.0);
    live.AddWorker(locs[i], radii[i]);
  }
  live.Prepare();

  for (int step = 0; step < 300; ++step) {
    const auto w = static_cast<uint32_t>(rng.UniformInt(n));
    switch (rng.UniformInt(4)) {
      case 0: {  // Same-cell jitter (cells are ~600 m at this density).
        locs[w] = {locs[w].x + rng.UniformDouble(-30.0, 30.0),
                   locs[w].y + rng.UniformDouble(-30.0, 30.0)};
        live.UpdateWorkerLocation(w, locs[w]);
        break;
      }
      case 1: {  // Cross-cell jump.
        locs[w] = {rng.UniformDouble(0.0, 20000.0),
                   rng.UniformDouble(0.0, 20000.0)};
        live.UpdateWorkerLocation(w, locs[w]);
        break;
      }
      case 2:
        live.MarkMatched(w);
        matched[w] = 1;
        break;
      default:  // Re-report of a (possibly matched) worker, moved.
        locs[w] = {locs[w].x + rng.UniformDouble(-30.0, 30.0),
                   locs[w].y + rng.UniformDouble(-30.0, 30.0)};
        live.UpdateWorkerLocation(w, locs[w]);
        live.MarkAvailable(w);
        matched[w] = 0;
        break;
    }
  }

  U2uCandidateStage fresh(config);
  for (size_t i = 0; i < n; ++i) fresh.AddWorker(locs[i], radii[i]);
  fresh.Prepare();
  for (size_t i = 0; i < n; ++i) {
    if (matched[i]) fresh.MarkMatched(static_cast<uint32_t>(i));
  }

  for (int q = 0; q < 40; ++q) {
    const geo::Point task{rng.UniformDouble(0.0, 20000.0),
                          rng.UniformDouble(0.0, 20000.0)};
    EXPECT_EQ(live.Collect(task), fresh.Collect(task)) << "query " << q;
    EXPECT_EQ(live.stats().scanned_last + live.stats().pruned_last,
              fresh.stats().scanned_last + fresh.stats().pruned_last)
        << "query " << q;
  }
}

// ---- Range kernels vs references -------------------------------------

/// A mirror whose bounds cover every trichotomy shape, like kernel_test's
/// ClassifierSoA: mode 0 mixed, 1 empty band, 2 all-accept, 3 all-reject.
reachability::CellMajorMirror ClassifierMirror(size_t n, int mode,
                                               stats::Rng& rng) {
  reachability::CellMajorMirror m;
  m.Resize(n);
  for (size_t i = 0; i < n; ++i) {
    m.id[i] = static_cast<uint32_t>(1000 + i * 3);  // Arbitrary id values.
    m.x[i] = rng.UniformDouble(0.0, 20000.0);
    m.y[i] = rng.UniformDouble(0.0, 20000.0);
    m.expanded_r[i] = rng.UniformDouble(500.0, 4000.0);
    switch (mode) {
      case 0: {
        const double accept = rng.UniformDouble(0.0, 10000.0);
        m.accept_below_sq[i] = accept * accept;
        const double reject = accept + rng.UniformDouble(0.0, 8000.0);
        m.reject_above_sq[i] = reject * reject;
        break;
      }
      case 1: {
        const double edge = rng.UniformDouble(0.0, 15000.0);
        m.accept_below_sq[i] = edge * edge;
        m.reject_above_sq[i] = edge * edge;
        break;
      }
      case 2:
        m.accept_below_sq[i] = 1e18;
        m.reject_above_sq[i] = 2e18;
        break;
      default:
        m.accept_below_sq[i] = -1.0;
        m.reject_above_sq[i] = 0.0;
        break;
    }
  }
  return m;
}

/// Branchy reference of the range trichotomy (same arithmetic order).
void ReferenceRange(const reachability::CellMajorMirror& m, size_t begin,
                    size_t count, double tx, double ty,
                    std::vector<uint32_t>& accept,
                    std::vector<uint32_t>& band) {
  for (size_t k = begin; k < begin + count; ++k) {
    const double dx = m.x[k] - tx;
    const double dy = m.y[k] - ty;
    const double d_sq = dx * dx + dy * dy;
    if (d_sq <= m.accept_below_sq[k]) {
      accept.push_back(m.id[k]);
    } else if (d_sq < m.reject_above_sq[k]) {
      band.push_back(m.id[k]);
    }
  }
}

/// Branchy reference of the fused rectangle + trichotomy boundary kernel.
size_t ReferenceRangeRect(const reachability::CellMajorMirror& m, size_t begin,
                          size_t count, double tx, double ty, double q_min_x,
                          double q_min_y, double q_max_x, double q_max_y,
                          std::vector<uint32_t>& accept,
                          std::vector<uint32_t>& band) {
  size_t admitted = 0;
  for (size_t k = begin; k < begin + count; ++k) {
    const double er = m.expanded_r[k];
    const bool admit = m.x[k] - er <= q_max_x && q_min_x <= m.x[k] + er &&
                       m.y[k] - er <= q_max_y && q_min_y <= m.y[k] + er;
    if (!admit) continue;
    ++admitted;
    const double dx = m.x[k] - tx;
    const double dy = m.y[k] - ty;
    const double d_sq = dx * dx + dy * dy;
    if (d_sq <= m.accept_below_sq[k]) {
      accept.push_back(m.id[k]);
    } else if (d_sq < m.reject_above_sq[k]) {
      band.push_back(m.id[k]);
    }
  }
  return admitted;
}

TEST(RangeKernelTest, ScalarMatchesReferenceAndAppends) {
  stats::Rng rng(20260811);
  for (const size_t count : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                             size_t{5}, size_t{8}, size_t{13}, size_t{64},
                             size_t{257}}) {
    for (int mode = 0; mode < 4; ++mode) {
      const auto m = ClassifierMirror(count + 8, mode, rng);
      const size_t begin = count > 2 ? 3 : 0;  // Off-origin range starts.
      const double tx = rng.UniformDouble(0.0, 20000.0);
      const double ty = rng.UniformDouble(0.0, 20000.0);
      // Pre-populated outputs: the range kernels append.
      std::vector<uint32_t> accept_ref = {111}, band_ref = {222};
      std::vector<uint32_t> accept = {111}, band = {222};
      ReferenceRange(m, begin, count, tx, ty, accept_ref, band_ref);
      reachability::ClassifyCertainBandRangeScalar(m, begin, count, tx, ty,
                                                   accept, band);
      const std::string label =
          "count=" + std::to_string(count) + " mode=" + std::to_string(mode);
      EXPECT_EQ(accept, accept_ref) << label;
      EXPECT_EQ(band, band_ref) << label;

      const double q_min_x = tx - 4000.0, q_max_x = tx + 4000.0;
      const double q_min_y = ty - 4000.0, q_max_y = ty + 4000.0;
      accept_ref.assign({111});
      band_ref.assign({222});
      accept.assign({111});
      band.assign({222});
      const size_t admitted_ref =
          ReferenceRangeRect(m, begin, count, tx, ty, q_min_x, q_min_y,
                             q_max_x, q_max_y, accept_ref, band_ref);
      const size_t admitted = reachability::ClassifyCertainBandRangeRectScalar(
          m, begin, count, tx, ty, q_min_x, q_min_y, q_max_x, q_max_y, accept,
          band);
      EXPECT_EQ(admitted, admitted_ref) << label;
      EXPECT_EQ(accept, accept_ref) << label;
      EXPECT_EQ(band, band_ref) << label;
    }
  }
}

#if defined(SCGUARD_HAVE_AVX2)
TEST(RangeKernelTest, Avx2MatchesScalarBitIdentically) {
  if (!reachability::CpuSupportsAvx2()) {
    GTEST_SKIP() << "host CPU lacks AVX2";
  }
  stats::Rng rng(20260812);
  for (const size_t count : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                             size_t{4}, size_t{5}, size_t{7}, size_t{8},
                             size_t{13}, size_t{16}, size_t{33}, size_t{64},
                             size_t{257}}) {
    for (int mode = 0; mode < 4; ++mode) {
      const auto m = ClassifierMirror(count + 8, mode, rng);
      const size_t begin = count > 2 ? 5 : 0;  // Unaligned range starts.
      const double tx = rng.UniformDouble(0.0, 20000.0);
      const double ty = rng.UniformDouble(0.0, 20000.0);
      std::vector<uint32_t> accept_s = {7}, band_s = {9};
      std::vector<uint32_t> accept_v = {7}, band_v = {9};
      reachability::ClassifyCertainBandRangeScalar(m, begin, count, tx, ty,
                                                   accept_s, band_s);
      reachability::ClassifyCertainBandRangeAvx2(m, begin, count, tx, ty,
                                                 accept_v, band_v);
      const std::string label =
          "count=" + std::to_string(count) + " mode=" + std::to_string(mode);
      EXPECT_EQ(accept_s, accept_v) << label;
      EXPECT_EQ(band_s, band_v) << label;

      const double q_min_x = tx - 3000.0, q_max_x = tx + 3000.0;
      const double q_min_y = ty - 3000.0, q_max_y = ty + 3000.0;
      accept_s.assign({7});
      band_s.assign({9});
      accept_v.assign({7});
      band_v.assign({9});
      const size_t admitted_s =
          reachability::ClassifyCertainBandRangeRectScalar(
              m, begin, count, tx, ty, q_min_x, q_min_y, q_max_x, q_max_y,
              accept_s, band_s);
      const size_t admitted_v = reachability::ClassifyCertainBandRangeRectAvx2(
          m, begin, count, tx, ty, q_min_x, q_min_y, q_max_x, q_max_y,
          accept_v, band_v);
      EXPECT_EQ(admitted_s, admitted_v) << label;
      EXPECT_EQ(accept_s, accept_v) << label;
      EXPECT_EQ(band_s, band_v) << label;
    }
  }
}
#endif  // SCGUARD_HAVE_AVX2

}  // namespace
}  // namespace scguard::assign
