# Empty dependencies file for privacy_tuning.
# This may be replaced when dependencies are built.
