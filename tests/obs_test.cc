#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "assign/algorithms.h"
#include "data/beijing.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "obs/trace.h"
#include "privacy/budget.h"
#include "reachability/empirical_model.h"
#include "reachability/model_cache.h"
#include "runtime/thread_pool.h"
#include "sim/defaults.h"
#include "sim/experiment.h"

namespace scguard::obs {
namespace {

/// Every test runs against the process-global registry/tracer, so each
/// one starts from zeroed metrics and leaves observability disabled.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetConfig(ObsConfig{.enabled = true});
    ResetGlobal();
  }
  void TearDown() override {
    ResetGlobal();
    SetConfig(ObsConfig{.enabled = false});
  }
};

TEST_F(ObsTest, CounterCountsExactly) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter");
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42);
  c->Reset();
  EXPECT_EQ(c->Value(), 0);
}

TEST_F(ObsTest, DisabledMetricsAreNoOps) {
  SetConfig(ObsConfig{.enabled = false});
  Counter* c = MetricsRegistry::Global().GetCounter("test.disabled.counter");
  Gauge* g = MetricsRegistry::Global().GetGauge("test.disabled.gauge");
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.disabled.histogram");
  c->Increment(100);
  g->Set(3.5);
  g->Add(1.0);
  h->Observe(0.25);
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0);
  EXPECT_EQ(h->Sum(), 0.0);
  EXPECT_EQ(h->Quantile(0.5), 0.0);
}

TEST_F(ObsTest, RegistryReturnsStablePointers) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.stable");
  Counter* b = MetricsRegistry::Global().GetCounter("test.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MetricsRegistry::Global().GetCounter("test.stable2"));
}

// The ISSUE's concurrency requirement: hammer one counter and one
// histogram from a pool and expect exact totals — sharded relaxed atomics
// must lose nothing.
TEST_F(ObsTest, ConcurrentHammerIsExact) {
  constexpr int kThreads = 8;
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 10000;
  Counter* c = MetricsRegistry::Global().GetCounter("test.hammer.counter");
  // 0.5 sums exactly in any order, so Sum() is deterministic too.
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.hammer.histogram", {0.1, 1.0, 10.0});
  {
    runtime::ThreadPool pool(kThreads);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([c, h] {
        for (int i = 0; i < kIncrementsPerTask; ++i) {
          c->Increment();
          h->Observe(0.5);
        }
      });
    }
    // Pool destructor drains the queue.
  }
  const int64_t expected = int64_t{kTasks} * kIncrementsPerTask;
  EXPECT_EQ(c->Value(), expected);
  EXPECT_EQ(h->Count(), expected);
  EXPECT_EQ(h->Sum(), 0.5 * static_cast<double>(expected));
  const std::vector<int64_t> buckets = h->BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[1], expected);  // All observations in (0.1, 1.0].
}

TEST_F(ObsTest, HistogramQuantilesInterpolate) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.quantiles", {1.0, 2.0, 4.0, 8.0});
  // 100 observations uniform in (0, 1]: p50 should interpolate to ~0.5
  // within the first bucket.
  for (int i = 0; i < 100; ++i) h->Observe(0.99);
  EXPECT_NEAR(h->Quantile(0.5), 0.5, 1e-9);
  EXPECT_NEAR(h->Quantile(1.0), 1.0, 1e-9);
  // Overflow observations clamp to the last finite bound.
  h->Reset();
  h->Observe(100.0);
  EXPECT_EQ(h->Quantile(0.99), 8.0);
  // Empty histogram reports 0.
  h->Reset();
  EXPECT_EQ(h->Quantile(0.5), 0.0);
}

// Satellite (ISSUE 7): pin `SpanStats::min_seconds` semantics. The first
// Record *seeds* min and max with the observed duration — min must never
// stick at the zero-initialized default, or every span would report a
// bogus 0s minimum forever.
TEST_F(ObsTest, TracerMinSecondsSeedsFromFirstSample) {
  Tracer tracer;
  tracer.Record("pin", 2.0);
  auto spans = tracer.Snapshot();
  EXPECT_EQ(spans.at("pin").min_seconds, 2.0);
  EXPECT_EQ(spans.at("pin").max_seconds, 2.0);
  tracer.Record("pin", 0.5);
  tracer.Record("pin", 3.0);
  spans = tracer.Snapshot();
  EXPECT_EQ(spans.at("pin").count, 3);
  EXPECT_EQ(spans.at("pin").min_seconds, 0.5);
  EXPECT_EQ(spans.at("pin").max_seconds, 3.0);
  EXPECT_EQ(spans.at("pin").total_seconds, 5.5);
  // A span that is genuinely instantaneous still pins min to 0 via a real
  // observation, not via the default initializer.
  tracer.Record("pin", 0.0);
  EXPECT_EQ(tracer.Snapshot().at("pin").min_seconds, 0.0);
}

// Satellite (ISSUE 7): quantile boundary behavior. Observations landing
// exactly on a bucket bound count into that bucket (lower_bound), ranks
// landing exactly on a bucket edge interpolate to the bound itself, and
// the overflow bucket saturates at the last finite bound.
TEST_F(ObsTest, HistogramQuantileBoundaries) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.quantile.boundaries", {1.0, 2.0, 4.0});

  // A single sample exactly on a bound lands in the bucket it closes.
  h->Observe(1.0);
  ASSERT_EQ(h->BucketCounts()[0], 1);
  EXPECT_NEAR(h->Quantile(0.5), 0.5, 1e-12);  // Interpolates within (0, 1].
  EXPECT_NEAR(h->Quantile(1.0), 1.0, 1e-12);
  EXPECT_EQ(h->Quantile(0.0), 0.0);

  // 100 samples in (1, 2]: p50/p95/p99 interpolate linearly, p100 hits
  // the upper bound exactly.
  h->Reset();
  for (int i = 0; i < 100; ++i) h->Observe(1.5);
  EXPECT_NEAR(h->Quantile(0.5), 1.5, 1e-12);
  EXPECT_NEAR(h->Quantile(0.95), 1.95, 1e-12);
  EXPECT_NEAR(h->Quantile(0.99), 1.99, 1e-12);
  EXPECT_NEAR(h->Quantile(1.0), 2.0, 1e-12);

  // Rank exactly on a bucket edge: 50 below 1.0, 50 in (1, 2]. The median
  // is the shared edge, not a value from either side.
  h->Reset();
  for (int i = 0; i < 50; ++i) h->Observe(0.5);
  for (int i = 0; i < 50; ++i) h->Observe(1.5);
  EXPECT_NEAR(h->Quantile(0.5), 1.0, 1e-12);
  EXPECT_NEAR(h->Quantile(0.75), 1.5, 1e-12);

  // Overflow saturates: any rank landing in the overflow bucket reports
  // the last finite bound rather than extrapolating.
  h->Reset();
  h->Observe(0.5);
  h->Observe(1e9);
  EXPECT_EQ(h->Quantile(0.99), 4.0);
  EXPECT_EQ(h->Quantile(1.0), 4.0);

  // Out-of-range q clamps instead of crashing.
  EXPECT_EQ(h->Quantile(-1.0), h->Quantile(0.0));
  EXPECT_EQ(h->Quantile(2.0), h->Quantile(1.0));
}

TEST_F(ObsTest, SpanNestingBuildsPaths) {
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
    { Span inner2("inner"); }
  }
  { Span outer2("outer"); }
  const auto spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_TRUE(spans.count("outer"));
  ASSERT_TRUE(spans.count("outer/inner"));
  EXPECT_EQ(spans.at("outer").count, 2);
  EXPECT_EQ(spans.at("outer/inner").count, 2);
  EXPECT_GE(spans.at("outer").total_seconds,
            spans.at("outer/inner").total_seconds);
  EXPECT_LE(spans.at("outer/inner").min_seconds,
            spans.at("outer/inner").max_seconds);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  SetConfig(ObsConfig{.enabled = false});
  {
    Span span("ghost");
  }
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

TEST_F(ObsTest, JsonExportShape) {
  MetricsRegistry::Global().GetCounter("test.json.counter")->Increment(7);
  MetricsRegistry::Global().GetGauge("test.json.gauge")->Set(1.5);
  MetricsRegistry::Global()
      .GetHistogram("test.json.histogram", {1.0, 2.0})
      ->Observe(0.5);
  { Span span("test.json.span"); }
  const std::string json = SnapshotJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.histogram\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"spans\":{\"test.json.span\":{\"count\":1"),
            std::string::npos);
}

TEST_F(ObsTest, PrometheusExportShape) {
  MetricsRegistry::Global().GetCounter("test.prom.counter")->Increment(3);
  MetricsRegistry::Global()
      .GetHistogram("test.prom.hist", {1.0, 2.0})
      ->Observe(0.5);
  const std::string text = PrometheusText();
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 1"), std::string::npos);
}

TEST_F(ObsTest, BudgetLedgerTelemetry) {
  Counter* spends = MetricsRegistry::Global().GetCounter(
      "scguard.privacy.budget.spends");
  Counter* refused = MetricsRegistry::Global().GetCounter(
      "scguard.privacy.budget.refused_spends");
  Gauge* spent = MetricsRegistry::Global().GetGauge(
      "scguard.privacy.budget.epsilon_spent");
  privacy::BudgetLedger ledger(1.0);
  EXPECT_TRUE(ledger.Spend(0.25).ok());
  EXPECT_TRUE(ledger.Spend(0.5).ok());
  EXPECT_FALSE(ledger.Spend(0.5).ok());
  EXPECT_EQ(spends->Value(), 2);
  EXPECT_EQ(refused->Value(), 1);
  EXPECT_NEAR(spent->Value(), 0.75, 1e-12);
}

}  // namespace
}  // namespace scguard::obs

namespace scguard::sim {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.synth.num_taxis = 300;
  config.synth.mean_trips_per_taxi = 6.0;
  config.workload.num_workers = 60;
  config.workload.num_tasks = 60;
  config.num_seeds = 4;
  config.runtime.num_threads = 2;
  return config;
}

assign::MatcherHandle MakeEngine() {
  assign::AlgorithmParams params;
  params.worker_params = DefaultPrivacy();
  params.task_params = DefaultPrivacy();
  return assign::MakeProbabilisticModel(params);
}

void ExpectIdenticalResults(const AggregatedMetrics& a,
                            const AggregatedMetrics& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.assigned_tasks, b.assigned_tasks);
  EXPECT_EQ(a.accepted_assignments, b.accepted_assignments);
  EXPECT_EQ(a.travel_m, b.travel_m);
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.false_hits, b.false_hits);
  EXPECT_EQ(a.false_dismissals, b.false_dismissals);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.disclosures_per_task, b.disclosures_per_task);
}

// Acceptance criterion: turning instrumentation on must not change a
// single reported number — observation never perturbs RNG streams or
// assignment decisions.
TEST(ObsBitIdentityTest, EngineResultsIdenticalWithMetricsOnAndOff) {
  const auto runner = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(runner.ok());
  const privacy::PrivacyParams p = DefaultPrivacy();

  obs::SetConfig(obs::ObsConfig{.enabled = false});
  assign::MatcherHandle off_handle = MakeEngine();
  const auto off = runner->Run(off_handle, p, p);
  ASSERT_TRUE(off.ok());

  obs::SetConfig(obs::ObsConfig{.enabled = true});
  obs::ResetGlobal();
  assign::MatcherHandle on_handle = MakeEngine();
  const auto on = runner->Run(on_handle, p, p);
  obs::SetConfig(obs::ObsConfig{.enabled = false});
  ASSERT_TRUE(on.ok());

  ExpectIdenticalResults(*off, *on);
}

// And the same for the Monte-Carlo empirical tables.
TEST(ObsBitIdentityTest, EmpiricalTablesIdenticalWithMetricsOnAndOff) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 20000;
  config.num_shards = 4;
  const privacy::PrivacyParams p = DefaultPrivacy();

  obs::SetConfig(obs::ObsConfig{.enabled = false});
  stats::Rng rng_off(7);
  const auto off = reachability::EmpiricalModel::Build(config, p, rng_off);
  ASSERT_TRUE(off.ok());

  obs::SetConfig(obs::ObsConfig{.enabled = true});
  stats::Rng rng_on(7);
  const auto on = reachability::EmpiricalModel::Build(config, p, rng_on);
  obs::SetConfig(obs::ObsConfig{.enabled = false});
  ASSERT_TRUE(on.ok());

  std::ostringstream a, b;
  off->Serialize(a);
  on->Serialize(b);
  EXPECT_EQ(a.str(), b.str());
}

// Counter snapshots are a pure function of (config, seed, shard count):
// two identical instrumented runs produce identical counters.
TEST(ObsDeterminismTest, CounterSnapshotsRepeatForFixedSeed) {
  const auto runner = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(runner.ok());
  const privacy::PrivacyParams p = DefaultPrivacy();

  obs::SetConfig(obs::ObsConfig{.enabled = true});
  const auto run_once = [&] {
    obs::ResetGlobal();
    assign::MatcherHandle handle = MakeEngine();
    const auto agg = runner->Run(handle, p, p);
    EXPECT_TRUE(agg.ok());
    return obs::MetricsRegistry::Global().Snapshot();
  };
  const auto first = run_once();
  const auto second = run_once();
  obs::SetConfig(obs::ObsConfig{.enabled = false});
  obs::ResetGlobal();

  EXPECT_EQ(first.counters, second.counters);
  // Histogram observation *counts* are deterministic too (one per task
  // per stage); only the latencies inside differ.
  ASSERT_TRUE(first.histograms.count("scguard.engine.u2u_seconds"));
  EXPECT_EQ(first.histograms.at("scguard.engine.u2u_seconds").count,
            second.histograms.at("scguard.engine.u2u_seconds").count);
  // Sanity: the engine actually reported work (60 tasks x 4 seeds).
  EXPECT_EQ(first.counters.at("scguard.engine.tasks"), 240);
  EXPECT_GT(first.counters.at("scguard.engine.workers_evaluated"), 0);
}

}  // namespace
}  // namespace scguard::sim

namespace scguard::reachability {
namespace {

// Satellite: cache stats stay observable with the registry disabled —
// the struct accessor is maintained unconditionally.
TEST(ModelCacheStatsTest, StatsAccessorWorksWhileObsDisabled) {
  obs::SetConfig(obs::ObsConfig{.enabled = false});
  ModelCache cache;
  EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 5000;
  config.num_shards = 2;
  const privacy::PrivacyParams p{0.7, 800.0};
  ASSERT_TRUE(cache.GetOrBuild(config, p, p, /*build_seed=*/11).ok());
  ASSERT_TRUE(cache.GetOrBuild(config, p, p, /*build_seed=*/11).ok());
  const ModelCache::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.disk_loads, 0);
  // The registry mirror stayed silent.
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const auto it = snapshot.counters.find("scguard.model_cache.misses");
  if (it != snapshot.counters.end()) {
    EXPECT_EQ(it->second, 0);
  }
}

}  // namespace
}  // namespace scguard::reachability
