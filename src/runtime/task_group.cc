#include "runtime/task_group.h"

#include <utility>

#include "common/check.h"

namespace scguard::runtime {

void TaskGroup::Run(std::function<Status()> fn) {
  SCGUARD_CHECK(fn != nullptr);
  int index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = next_index_++;
    ++pending_;
  }
  pool_.Submit([this, index, fn = std::move(fn)] {
    Status st = fn();
    std::lock_guard<std::mutex> lock(mu_);
    if (!st.ok() && (error_index_ < 0 || index < error_index_)) {
      error_index_ = index;
      error_ = std::move(st);
    }
    // Notify while still holding the lock: the owner cannot wake, return
    // from Wait() and destroy this group before the broadcast completes.
    if (--pending_ == 0) cv_.notify_all();
  });
}

Status TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  return error_index_ < 0 ? Status::OK() : error_;
}

}  // namespace scguard::runtime
