#include "privacy/cloaking.h"

#include <cmath>

#include "common/check.h"

namespace scguard::privacy {

CloakingMechanism::CloakingMechanism(double width_m, double height_m)
    : width_(width_m), height_(height_m) {
  SCGUARD_CHECK(width_m > 0.0 && height_m > 0.0);
}

CloakingMechanism CloakingMechanism::WithArea(double area_m2) {
  SCGUARD_CHECK(area_m2 > 0.0);
  const double side = std::sqrt(area_m2);
  return CloakingMechanism(side, side);
}

geo::BoundingBox CloakingMechanism::Cloak(geo::Point location,
                                          stats::Rng& rng) const {
  // Uniform placement of the rectangle subject to containing the point:
  // the lower-left corner is uniform in [x - W, x] x [y - H, y].
  const double min_x = location.x - rng.UniformDouble(0.0, width_);
  const double min_y = location.y - rng.UniformDouble(0.0, height_);
  return geo::BoundingBox{min_x, min_y, min_x + width_, min_y + height_};
}

double CloakReachProbability(const geo::BoundingBox& cloak, geo::Point task,
                             double reach_radius_m) {
  SCGUARD_CHECK(!cloak.empty());
  if (reach_radius_m <= 0.0) return 0.0;
  // Quick bounds before sampling.
  if (cloak.DistanceTo(task) > reach_radius_m) return 0.0;
  constexpr int kGrid = 16;
  const double dx = cloak.Width() / kGrid;
  const double dy = cloak.Height() / kGrid;
  int inside = 0;
  for (int iy = 0; iy < kGrid; ++iy) {
    for (int ix = 0; ix < kGrid; ++ix) {
      const geo::Point p{cloak.min_x + (ix + 0.5) * dx,
                         cloak.min_y + (iy + 0.5) * dy};
      inside += geo::Distance(p, task) <= reach_radius_m ? 1 : 0;
    }
  }
  return static_cast<double>(inside) / (kGrid * kGrid);
}

}  // namespace scguard::privacy
