// The paper's Sec. VII extension: redundant task assignment where each
// task must be accepted by K workers (quality control for subjective
// tasks). Sweeps K and reports utility (tasks that reached K acceptances),
// total acceptances and disclosure cost.

#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  const privacy::PrivacyParams p{0.7, 800.0};

  sim::TablePrinter table(
      "Redundant assignment (eps=0.7, r=800): K workers per task",
      {"K", "fully-assigned tasks", "total acceptances", "false hits",
       "travel (m)"});
  for (int k : {1, 2, 3, 5}) {
    assign::AlgorithmParams params = MakeParams(p);
    params.redundancy_k = k;
    assign::MatcherHandle handle = assign::MakeProbabilisticModel(params);
    const auto agg = OrDie(runner.Run(handle, p, p));
    table.AddRow(StrCat(k),
                 {agg.assigned_tasks, agg.accepted_assignments, agg.false_hits,
                  agg.travel_m},
                 1);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
